"""Device profile: the parameters of the per-layer latency model.

The model assigns each layer class a device-specific effective
throughput:

* ``conv`` layers — small, shape-irregular GEMMs after im2col; on edge
  CPUs these run far below peak (cache-unfriendly, overhead-bound).
* ``dense`` layers — large contiguous GEMV/GEMMs that BLAS executes near
  its sustained rate.  The paper's measurements embed exactly this split:
  the 1.9-MFLOP MLP autoencoder contributes only ~25% of CBNet's time
  while the 0.8-MFLOP conv network costs 5x more (§IV-D).
* ``pool``/``elementwise`` layers — memory-bound; costed by bytes moved
  against the device's effective bandwidth.

plus a per-layer dispatch overhead (framework/interpreter cost) and a
fixed per-inference overhead.  The numeric values per device are fitted
to the paper's Table II in :mod:`repro.hw.devices`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.flops import LayerCost, StageCost
from repro.hw.power import PowerModel

__all__ = ["DeviceProfile"]


@dataclass(frozen=True)
class DeviceProfile:
    """An edge/cloud device for the latency + power simulation.

    Attributes
    ----------
    conv_gmacs, dense_gmacs:
        Effective sustained throughput in Giga-MACs/s for conv and dense
        layers respectively.
    mem_bandwidth_gbs:
        Effective memory bandwidth (GB/s) for memory-bound layers.
    layer_overhead_s:
        Fixed dispatch cost charged to every conv/dense/pool layer.
    inference_overhead_s:
        Fixed cost charged once per inference (input staging etc.).
    power:
        The device's power model (paper Eq. 1 / Eq. 2 / GPU constants).
    sync_overhead_s:
        Cost of one *dynamic control-flow decision* (BranchyNet's
        per-sample entropy gate): computing the gate statistic, branching
        on it, and — on accelerators — the device-host synchronization it
        forces.  CBNet's static AE→classifier pipeline pays none of this,
        which is visible in the paper's K80 numbers (CBNet beats even
        BranchyNet's pure early-exit path).
    utilization:
        Average CPU utilization during inference, feeding the power model
        (the paper observes "negligible difference ... between various
        models", so one value per device suffices).
    """

    name: str
    conv_gmacs: float
    dense_gmacs: float
    mem_bandwidth_gbs: float
    layer_overhead_s: float
    inference_overhead_s: float
    power: PowerModel
    sync_overhead_s: float = 0.0
    utilization: float = 0.95
    description: str = ""

    def __post_init__(self) -> None:
        for attr in ("conv_gmacs", "dense_gmacs", "mem_bandwidth_gbs"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{self.name}: {attr} must be positive")
        if self.layer_overhead_s < 0 or self.inference_overhead_s < 0:
            raise ValueError(f"{self.name}: overheads must be non-negative")

    # ------------------------------------------------------------------ #
    # latency model
    # ------------------------------------------------------------------ #
    def layer_latency(self, cost: LayerCost) -> float:
        """Seconds to execute one layer for a single sample."""
        if cost.kind == "conv":
            compute = cost.macs / (self.conv_gmacs * 1e9)
        elif cost.kind == "dense":
            compute = cost.macs / (self.dense_gmacs * 1e9)
        elif cost.kind in ("pool", "elementwise"):
            compute = cost.bytes_total / (self.mem_bandwidth_gbs * 1e9)
        else:  # "none": reshape/flatten — free
            return 0.0
        overhead = self.layer_overhead_s if cost.kind in ("conv", "dense", "pool") else 0.0
        return compute + overhead

    def stage_latency(self, stage: StageCost) -> float:
        """Seconds to execute one stage for a single sample."""
        return sum(self.layer_latency(layer) for layer in stage.layers)
