"""The converting autoencoder (the paper's core contribution, Table I).

A three-hidden-layer MLP that maps a (possibly hard) 784-pixel image to
an *easy* image of the same class.  Architectures are dataset-specific
and follow Table I exactly:

=================  =======  =======  =======
layer              MNIST    FMNIST   KMNIST
=================  =======  =======  =======
Input              784      784      784
FullyConnected1    784/relu 512/relu 512/relu
FullyConnected2    384/relu 256/relu 384/linear
FullyConnected3    32/lin   128/lin  32/linear
FullyConnected4    784/Soft 784/Soft 784/Softmax
=================  =======  =======  =======

The encoder output (FullyConnected3) carries an L1 activity penalty with
coefficient 10e-8 (paper §III-A3), added to the reconstruction loss by
the trainer.

The Softmax output head means reconstructions are *probability images*
(unit-sum over the 784 pixels); training targets are normalized with
:func:`repro.data.transforms.to_unit_sum` and inference outputs are
rescaled back to peak-1 with :func:`from_unit_sum` before classification.
A ``sigmoid`` head is provided as an ablation (see DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import no_grad
from repro.nn.layers import ActivityRegularizer, Linear, Scale
from repro.nn.layers.activation import activation_by_name
from repro.nn.module import Module, Sequential
from repro.nn.tensor import Tensor
from repro.utils.rng import as_generator

__all__ = ["AutoencoderSpec", "TABLE1_SPECS", "ConvertingAutoencoder"]

# The paper writes the coefficient as "10e-8" = 1e-7.
L1_ACTIVITY_COEFF = 1e-7


@dataclass(frozen=True)
class AutoencoderSpec:
    """Architecture description for one dataset's converting autoencoder."""

    name: str
    layer_sizes: tuple[int, ...]  # hidden1, hidden2, hidden3 (bottleneck last)
    activations: tuple[str, ...]  # one per hidden layer
    output_activation: str = "softmax"
    input_dim: int = 784
    l1_activity: float = L1_ACTIVITY_COEFF

    def __post_init__(self) -> None:
        if len(self.layer_sizes) != len(self.activations):
            raise ValueError(
                f"{self.name}: {len(self.layer_sizes)} layers but "
                f"{len(self.activations)} activations"
            )


TABLE1_SPECS: dict[str, AutoencoderSpec] = {
    "mnist": AutoencoderSpec(
        name="mnist",
        layer_sizes=(784, 384, 32),
        activations=("relu", "relu", "linear"),
    ),
    "fmnist": AutoencoderSpec(
        name="fmnist",
        layer_sizes=(512, 256, 128),
        activations=("relu", "relu", "linear"),
    ),
    "kmnist": AutoencoderSpec(
        name="kmnist",
        layer_sizes=(512, 384, 32),
        activations=("relu", "linear", "linear"),
    ),
}


class ConvertingAutoencoder(Module):
    """Hard→easy image converter.

    Parameters
    ----------
    spec:
        Architecture (one of :data:`TABLE1_SPECS` or a custom spec).
    rng:
        Weight-init generator.
    """

    def __init__(self, spec: AutoencoderSpec, rng: np.random.Generator | int | None = None):
        super().__init__()
        rng = as_generator(rng)
        self.spec = spec
        layers: list[Module] = []
        width = spec.input_dim
        for size, act in zip(spec.layer_sizes, spec.activations):
            layers.append(Linear(width, size, rng=rng))
            layers.append(activation_by_name(act))
            width = size
        self.encoder = Sequential(*layers)
        self.activity_reg = ActivityRegularizer(l1=spec.l1_activity)
        decoder_layers: list[Module] = [
            Linear(width, spec.input_dim, rng=rng),
            activation_by_name(spec.output_activation),
        ]
        if spec.output_activation == "softmax":
            # softmax(z) * D: probability-image semantics (Table I) at a
            # numeric scale where MSE gradients do not vanish — see
            # repro.nn.layers.scale.Scale.
            decoder_layers.append(Scale(spec.input_dim))
        self.decoder = Sequential(*decoder_layers)

    @classmethod
    def for_dataset(
        cls, name: str, rng: np.random.Generator | int | None = None, **overrides
    ) -> "ConvertingAutoencoder":
        """Build the Table-I architecture for a dataset by name."""
        if name not in TABLE1_SPECS:
            raise KeyError(f"no Table-I spec for {name!r}; have {sorted(TABLE1_SPECS)}")
        spec = TABLE1_SPECS[name]
        if overrides:
            from dataclasses import replace

            spec = replace(spec, **overrides)
        return cls(spec, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        """Flat (N, 784) input → reconstructed (N, 784) easy image."""
        if x.ndim != 2 or x.shape[1] != self.spec.input_dim:
            raise ValueError(
                f"autoencoder expects (N, {self.spec.input_dim}), got {x.shape}"
            )
        code = self.activity_reg(self.encoder(x))
        return self.decoder(code)

    def encode(self, x: Tensor) -> Tensor:
        """Bottleneck representation (N, layer_sizes[-1])."""
        return self.encoder(x)

    def activity_penalty(self) -> Tensor | None:
        """L1 penalty recorded by the last training forward pass."""
        return self.activity_reg.pop_penalty()

    def convert(
        self, images: np.ndarray, batch_size: int = 512, fastpath: bool = True
    ) -> np.ndarray:
        """Inference: NCHW or flat images → converted flat images (N, 784).

        ``fastpath=True`` (default) runs the encoder+decoder through a
        compiled plan (fused Linear+ReLU steps, allocation-free softmax
        head); the activity regularizer is a no-op in eval mode and is
        elided from the plan.
        """
        self.eval()
        flat = np.ascontiguousarray(
            images.reshape(images.shape[0], -1), dtype=np.float32
        )
        if flat.shape[1] != self.spec.input_dim:
            raise ValueError(
                f"autoencoder expects (N, {self.spec.input_dim}), got {flat.shape}"
            )
        out = np.empty_like(flat)
        with no_grad():
            for start in range(0, flat.shape[0], batch_size):
                sl = slice(start, start + batch_size)
                if fastpath:
                    out[sl] = self.inference_plan(
                        flat[sl].shape, (self.encoder, self.decoder), key="full"
                    ).run(flat[sl])
                else:
                    out[sl] = self.forward(Tensor(flat[sl])).data
        return out

    def stages(self) -> list[tuple[str, Sequential]]:
        return [("encoder", self.encoder), ("decoder", self.decoder)]
