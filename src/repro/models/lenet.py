"""Baseline LeNet (Lecun et al. 1998).

The paper's "LeNet" baseline and BranchyNet-LeNet main network have
"three convolutional layers and two fully-connected layers" — exactly the
classic LeNet-5 layout (C1, C3, C5 convolutions; F6 and output dense
layers), which is what this module implements for 28x28 grayscale input.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Conv2d, Flatten, Linear, MaxPool2d, ReLU
from repro.nn.module import Module, Sequential
from repro.nn.tensor import Tensor
from repro.utils.rng import as_generator

__all__ = ["LeNet"]


class LeNet(Module):
    """LeNet-style classifier for 28x28 grayscale images.

    Structure (spatial sizes for 28x28 input):

    =====================  ==========================
    conv1 4@5x5             1x28x28 → 4x24x24 → pool → 4x12x12
    conv2 20@5x5            4x12x12 → 20x8x8  → pool → 20x4x4
    conv3 80@3x3 pad 1      20x4x4  → 80x4x4
    fc1   1280 → 120
    fc2   120 → num_classes
    =====================  ==========================

    Channel widths differ from the 1998 LeNet-5: they are chosen so the
    *cost split* between the first conv layer and the rest of the network
    matches the latency ratios the paper measures between BranchyNet's
    early-exit path and the full network (early path ≈ 15% of total
    compute) — see DESIGN.md §2.  The layer count and layout ("three
    convolutional layers and two fully-connected layers", paper §IV-B)
    are preserved exactly.
    """

    IN_SHAPE = (1, 28, 28)

    def __init__(self, num_classes: int = 10, rng: np.random.Generator | int | None = None):
        super().__init__()
        rng = as_generator(rng)
        self.num_classes = num_classes
        self.features = Sequential(
            Conv2d(1, 4, kernel_size=5, rng=rng),
            ReLU(),
            MaxPool2d(2),
            Conv2d(4, 20, kernel_size=5, rng=rng),
            ReLU(),
            MaxPool2d(2),
            Conv2d(20, 80, kernel_size=3, padding=1, rng=rng),
            ReLU(),
        )
        self.classifier = Sequential(
            Flatten(),
            Linear(80 * 4 * 4, 120, rng=rng),
            ReLU(),
            Linear(120, num_classes, rng=rng),
        )

    def forward(self, x: Tensor) -> Tensor:
        """Return class logits (N, num_classes) for NCHW input."""
        return self.classifier(self.features(x))

    def predict(
        self, images: np.ndarray, batch_size: int = 256, fastpath: bool = True
    ) -> np.ndarray:
        """Label predictions for a raw image array (inference mode).

        ``fastpath=True`` (default) routes through a compiled
        :class:`~repro.nn.fastpath.InferencePlan` covering features +
        classifier — one im2col/GEMM program reused across batches;
        ``fastpath=False`` runs the reference autograd path.
        """
        from repro.nn import no_grad

        self.eval()
        images = np.ascontiguousarray(images, dtype=np.float32)
        outputs = []
        with no_grad():
            for start in range(0, images.shape[0], batch_size):
                batch = images[start : start + batch_size]
                if fastpath:
                    logits = self.inference_plan(
                        batch.shape, (self.features, self.classifier), key="full"
                    ).run(batch)
                else:
                    logits = self.forward(Tensor(batch)).data
                outputs.append(logits.argmax(axis=1))
        return np.concatenate(outputs) if outputs else np.empty(0, dtype=np.int64)

    def stages(self) -> list[tuple[str, Sequential]]:
        """Named computation stages, consumed by the FLOPs/latency models."""
        return [("features", self.features), ("classifier", self.classifier)]
