"""Named model factory — lets experiments and the CLI build models from
string identifiers."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.models.autoencoder import ConvertingAutoencoder
from repro.models.branchynet import BranchyLeNet
from repro.models.lenet import LeNet
from repro.nn.module import Module

__all__ = ["MODEL_BUILDERS", "build_model"]


def _miniresnet(rng=None, **kw) -> Module:
    from repro.models.resnet import MiniResNet

    return MiniResNet(rng=rng, **kw)

MODEL_BUILDERS: dict[str, Callable[..., Module]] = {
    "lenet": lambda rng=None, **kw: LeNet(rng=rng, **kw),
    "branchynet": lambda rng=None, **kw: BranchyLeNet(rng=rng, **kw),
    "miniresnet": lambda rng=None, **kw: _miniresnet(rng=rng, **kw),
    "autoencoder-mnist": lambda rng=None, **kw: ConvertingAutoencoder.for_dataset(
        "mnist", rng=rng, **kw
    ),
    "autoencoder-fmnist": lambda rng=None, **kw: ConvertingAutoencoder.for_dataset(
        "fmnist", rng=rng, **kw
    ),
    "autoencoder-kmnist": lambda rng=None, **kw: ConvertingAutoencoder.for_dataset(
        "kmnist", rng=rng, **kw
    ),
}


def build_model(name: str, rng: np.random.Generator | int | None = None, **kwargs) -> Module:
    """Instantiate a registered model by name."""
    if name not in MODEL_BUILDERS:
        raise KeyError(f"unknown model {name!r}; available: {sorted(MODEL_BUILDERS)}")
    return MODEL_BUILDERS[name](rng=rng, **kwargs)
