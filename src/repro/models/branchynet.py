"""BranchyNet-LeNet (Teerapittayanon et al., 2016) with one early exit.

Per the paper (§IV-B): "BranchyNet consists of three convolutional layers
and two fully-connected layers in the main network.  It has one early-exit
branch consisting of one convolutional layer and one fully-connected
layer after the first convolutional layer of the main network."

At inference, a sample exits at the branch when the entropy of the branch
softmax falls below the dataset-specific threshold (0.05 MNIST / 0.5
FMNIST / 0.025 KMNIST in the paper's experiments); otherwise it continues
through the remaining main-network layers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import functional as F
from repro.nn import no_grad
from repro.nn.layers import Conv2d, Flatten, Linear, MaxPool2d, ReLU
from repro.nn.module import Module, Sequential
from repro.nn.tensor import Tensor
from repro.utils.rng import as_generator

__all__ = ["BranchyLeNet", "BranchyInferenceResult"]


@dataclass
class BranchyInferenceResult:
    """Outcome of threshold-gated BranchyNet inference over a batch.

    Attributes
    ----------
    predictions:
        (N,) predicted labels.
    exited_early:
        (N,) bool — True where the sample left at the branch exit.
    branch_entropy:
        (N,) entropy of the branch softmax (the exit-gate statistic).
    """

    predictions: np.ndarray
    exited_early: np.ndarray
    branch_entropy: np.ndarray

    @property
    def early_exit_rate(self) -> float:
        return float(self.exited_early.mean()) if self.exited_early.size else 0.0


class BranchyLeNet(Module):
    """LeNet-5 main network + one early-exit branch after conv1.

    Stages
    ------
    ``stem``    conv1 + pool (shared by both exits): 1x28x28 → 4x12x12
    ``branch``  pool + conv_b 4@3x3 + FC → logits    (exit 1)
    ``trunk``   conv2, conv3, fc1, fc2 → logits      (exit 2 / final)

    The stem + trunk is exactly the :class:`~repro.models.lenet.LeNet`
    architecture (the "main network"); the branch adds one conv and one
    FC layer, matching the paper's description.  The branch downsamples
    first so the early-exit path stays cheap relative to the trunk —
    mirroring the latency split the paper measures.
    """

    IN_SHAPE = (1, 28, 28)

    def __init__(
        self,
        num_classes: int = 10,
        rng: np.random.Generator | int | None = None,
        entropy_threshold: float = 0.05,
    ) -> None:
        super().__init__()
        rng = as_generator(rng)
        self.num_classes = num_classes
        self.entropy_threshold = float(entropy_threshold)
        self.stem = Sequential(
            Conv2d(1, 4, kernel_size=5, rng=rng),
            ReLU(),
            MaxPool2d(2),
        )
        self.branch = Sequential(
            MaxPool2d(2),
            Conv2d(4, 4, kernel_size=3, padding=1, rng=rng),
            ReLU(),
            Flatten(),
            Linear(4 * 6 * 6, num_classes, rng=rng),
        )
        self.trunk = Sequential(
            Conv2d(4, 20, kernel_size=5, rng=rng),
            ReLU(),
            MaxPool2d(2),
            Conv2d(20, 80, kernel_size=3, padding=1, rng=rng),
            ReLU(),
            Flatten(),
            Linear(80 * 4 * 4, 120, rng=rng),
            ReLU(),
            Linear(120, num_classes, rng=rng),
        )

    # ------------------------------------------------------------------ #
    # training path
    # ------------------------------------------------------------------ #
    def forward(self, x: Tensor) -> list[Tensor]:
        """Return logits from every exit (joint-training path)."""
        shared = self.stem(x)
        return [self.branch(shared), self.trunk(shared)]

    # ------------------------------------------------------------------ #
    # inference path
    # ------------------------------------------------------------------ #
    def infer(
        self,
        images: np.ndarray,
        threshold: float | None = None,
        batch_size: int = 256,
        fastpath: bool = True,
    ) -> BranchyInferenceResult:
        """Threshold-gated early-exit inference over a raw image array.

        Vectorized gating: the whole batch runs the stem + branch; only
        the sub-batch whose branch entropy clears the threshold continues
        through the trunk.  (On a real device samples arrive one at a
        time; the latency model in :mod:`repro.hw.latency` accounts for
        per-sample costs — here we only need predictions and exit masks.)

        With ``fastpath=True`` (default) each stage runs through a
        compiled :class:`~repro.nn.fastpath.InferencePlan` — lazily
        traced per batch shape, reused across batches (including the
        ragged final one and variable-size hard sub-batches).  Set
        ``fastpath=False`` to run the reference autograd path (used by
        the equivalence tests).
        """
        threshold = self.entropy_threshold if threshold is None else float(threshold)
        self.eval()
        images = np.ascontiguousarray(images, dtype=np.float32)
        preds = np.empty(images.shape[0], dtype=np.int64)
        exited = np.empty(images.shape[0], dtype=bool)
        entropies = np.empty(images.shape[0], dtype=np.float32)
        with no_grad():
            for start in range(0, images.shape[0], batch_size):
                sl = slice(start, start + batch_size)
                batch = images[sl]
                if fastpath:
                    shared = self.inference_plan(batch.shape, self.stem, key="stem").run(batch)
                    branch_logits = self.inference_plan(
                        shared.shape, self.branch, key="branch"
                    ).run(shared)
                else:
                    shared = self.stem(Tensor(batch)).data
                    branch_logits = self.branch(Tensor(shared)).data
                probs = _softmax_np(branch_logits)
                ent = F.entropy(probs, axis=1)
                take_early = ent < threshold
                batch_preds = probs.argmax(axis=1)
                if not take_early.all():
                    if take_early.any():
                        hard_idx = np.flatnonzero(~take_early)
                        hard = shared[hard_idx]  # fancy indexing: fresh contiguous copy
                    else:
                        # All-hard batch: the whole stem output continues —
                        # skip the pointless gather copy (and the empty
                        # easy sub-batch it would leave behind).
                        hard_idx = slice(None)
                        hard = shared
                    if fastpath:
                        trunk_logits = self.inference_plan(
                            hard.shape, self.trunk, key="trunk"
                        ).run(hard)
                    else:
                        trunk_logits = self.trunk(Tensor(hard)).data
                    batch_preds[hard_idx] = trunk_logits.argmax(axis=1)
                preds[sl] = batch_preds
                exited[sl] = take_early
                entropies[sl] = ent
        return BranchyInferenceResult(preds, exited, entropies)

    def branch_entropies(self, images: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Entropy of the branch softmax per sample (no trunk execution)."""
        return self.branch_gate(images, batch_size)[0]

    def branch_gate(
        self, images: np.ndarray, batch_size: int = 256, fastpath: bool = True
    ) -> tuple[np.ndarray, np.ndarray]:
        """One stem+branch pass → (entropies, branch predictions).

        The serving-layer router needs both the gate statistic and the
        early-exit labels; computing them together avoids a second
        forward pass over the shared stem.  Runs through the compiled
        stem/branch plans (shared with :meth:`infer`) by default.
        """
        self.eval()
        images = np.ascontiguousarray(images, dtype=np.float32)
        entropies = np.empty(images.shape[0], dtype=np.float32)
        preds = np.empty(images.shape[0], dtype=np.int64)
        with no_grad():
            for start in range(0, images.shape[0], batch_size):
                sl = slice(start, start + batch_size)
                batch = images[sl]
                if fastpath:
                    shared = self.inference_plan(batch.shape, self.stem, key="stem").run(batch)
                    logits = self.inference_plan(
                        shared.shape, self.branch, key="branch"
                    ).run(shared)
                else:
                    logits = self.branch(self.stem(Tensor(batch))).data
                probs = _softmax_np(logits)
                entropies[sl] = F.entropy(probs, axis=1)
                preds[sl] = probs.argmax(axis=1)
        return entropies, preds

    def stem_features(
        self, images: np.ndarray, batch_size: int = 256, fastpath: bool = True
    ) -> np.ndarray:
        """Shared-stem activations for a raw image batch.

        This is the tensor an edge device ships upstream when it
        offloads a hard sample (:mod:`repro.offload`): the cloud replica
        resumes from the stem output and runs only the trunk.  Runs the
        same compiled stem plan as :meth:`infer`/:meth:`branch_gate`.
        """
        self.eval()
        images = np.ascontiguousarray(images, dtype=np.float32)
        out: np.ndarray | None = None
        with no_grad():
            for start in range(0, images.shape[0], batch_size):
                batch = images[start : start + batch_size]
                if fastpath:
                    shared = self.inference_plan(batch.shape, self.stem, key="stem").run(batch)
                else:
                    shared = self.stem(Tensor(batch)).data
                if out is None:
                    out = np.empty((images.shape[0], *shared.shape[1:]), dtype=np.float32)
                out[start : start + batch.shape[0]] = shared
        if out is None:  # empty input batch: derive the stem shape cheaply
            probe = self.stem(Tensor(np.zeros((1, *images.shape[1:]), dtype=np.float32))).data
            out = np.empty((0, *probe.shape[1:]), dtype=np.float32)
        return out

    def stages(self) -> list[tuple[str, Sequential]]:
        """Named stages for the FLOPs/latency models."""
        return [("stem", self.stem), ("branch", self.branch), ("trunk", self.trunk)]


def _softmax_np(logits: np.ndarray) -> np.ndarray:
    """Plain-array stable softmax (inference hot path, no autograd)."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=1, keepdims=True)
