"""`repro.models` — the paper's model zoo.

* :class:`LeNet` — the baseline (3 conv + 2 FC, classic LeNet-5 layout).
* :class:`BranchyLeNet` — BranchyNet-LeNet: LeNet main network plus one
  early-exit branch (1 conv + 1 FC) after the first conv layer.
* :class:`ConvertingAutoencoder` — the paper's contribution, Table I.
* :class:`LightweightClassifier` — the early-exit branch truncated out of
  a trained BranchyNet (2 conv + 1 FC).
"""

from repro.models.lenet import LeNet
from repro.models.branchynet import BranchyLeNet, BranchyInferenceResult
from repro.models.autoencoder import (
    ConvertingAutoencoder,
    AutoencoderSpec,
    TABLE1_SPECS,
)
from repro.models.lightweight import LightweightClassifier
from repro.models.resnet import MiniResNet, ResidualBlock
from repro.models.registry import build_model, MODEL_BUILDERS

__all__ = [
    "LeNet",
    "BranchyLeNet",
    "BranchyInferenceResult",
    "ConvertingAutoencoder",
    "AutoencoderSpec",
    "TABLE1_SPECS",
    "LightweightClassifier",
    "MiniResNet",
    "ResidualBlock",
    "build_model",
    "MODEL_BUILDERS",
]
