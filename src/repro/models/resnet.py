"""MiniResNet — the paper's §V architecture extension, at MNIST scale.

The conclusion plans to extend CBNet to "more complex ... DNN
architectures such as AlexNet and ResNet".  This module provides a
residual network sized for 28x28 grayscale input so the generalized
pipeline (:mod:`repro.core.generalized`) can be exercised on a modern
architecture: truncate the first k feature layers, label by entropy,
train the converting autoencoder, done — no BranchyNet, no LeNet.

The model keeps the ``features`` / ``classifier`` stage layout shared by
:class:`~repro.models.lenet.LeNet`, so truncation
(:meth:`LightweightClassifier.truncate_lenet`), the FLOPs walker, and the
latency model all work unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Conv2d, Flatten, Linear, MaxPool2d, ReLU
from repro.nn.module import Module, Sequential
from repro.nn.tensor import Tensor
from repro.utils.rng import as_generator

__all__ = ["ResidualBlock", "MiniResNet"]


class ResidualBlock(Module):
    """Two 3x3 convolutions with an identity (or 1x1-projected) skip.

    Pre-activation is skipped for simplicity; this is the classic
    post-activation block of He et al. (2016) without batch norm (the
    nets here are shallow enough to train without it).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.conv1 = Conv2d(in_channels, out_channels, kernel_size=3, padding=1, rng=rng)
        self.conv2 = Conv2d(out_channels, out_channels, kernel_size=3, padding=1, rng=rng)
        self.projection = (
            Conv2d(in_channels, out_channels, kernel_size=1, rng=rng)
            if in_channels != out_channels
            else None
        )

    def forward(self, x: Tensor) -> Tensor:
        out = self.conv2(self.conv1(x).relu())
        skip = self.projection(x) if self.projection is not None else x
        return (out + skip).relu()

    def __repr__(self) -> str:
        proj = ", projected" if self.projection is not None else ""
        return f"ResidualBlock({self.conv1.in_channels}->{self.conv2.out_channels}{proj})"


class MiniResNet(Module):
    """A small residual classifier for 28x28 grayscale images.

    Layout: conv stem → pool → residual block (8→16) → pool → residual
    block (16→32) → pool → FC head.  ~3x the MACs of the LeNet used in
    the main experiments, exercising deeper compute on the same substrate.
    """

    IN_SHAPE = (1, 28, 28)

    def __init__(self, num_classes: int = 10, rng: np.random.Generator | int | None = None):
        super().__init__()
        rng = as_generator(rng)
        self.num_classes = num_classes
        self.features = Sequential(
            Conv2d(1, 8, kernel_size=5, padding=2, rng=rng),
            ReLU(),
            MaxPool2d(2),  # 8x14x14
            ResidualBlock(8, 16, rng=rng),
            MaxPool2d(2),  # 16x7x7
            ResidualBlock(16, 32, rng=rng),
            MaxPool2d(2),  # 32x3x3
        )
        self.classifier = Sequential(
            Flatten(),
            Linear(32 * 3 * 3, 64, rng=rng),
            ReLU(),
            Linear(64, num_classes, rng=rng),
        )

    def forward(self, x: Tensor) -> Tensor:
        """Return class logits (N, num_classes) for NCHW input."""
        return self.classifier(self.features(x))

    def predict(self, images: np.ndarray, batch_size: int = 256) -> np.ndarray:
        from repro.nn import no_grad

        self.eval()
        out = np.empty(images.shape[0], dtype=np.int64)
        with no_grad():
            for start in range(0, images.shape[0], batch_size):
                sl = slice(start, start + batch_size)
                out[sl] = self.forward(Tensor(images[sl])).data.argmax(axis=1)
        return out

    def stages(self) -> list[tuple[str, Sequential]]:
        return [("features", self.features), ("classifier", self.classifier)]
