"""Lightweight DNN classifier — the truncated early-exit branch.

Paper §III-B: "the DNN is obtained by truncating the early-exit branch of
BranchyNet ... The lightweight DNN consists of 2 convolutional layers and
1 fully connected layer" — i.e. conv1 (shared stem) + the branch's conv +
the branch's FC, with the trained BranchyNet weights copied in.

For non-BranchyNet DNNs the same idea applies (layers 1..k plus a new
output head); :meth:`LightweightClassifier.truncate_lenet` implements
that generalization for the plain LeNet baseline.
"""

from __future__ import annotations

import numpy as np

from repro.nn import no_grad
from repro.nn.module import Module, Sequential
from repro.nn.layers import Linear, Flatten
from repro.nn.tensor import Tensor
from repro.utils.rng import as_generator

__all__ = ["LightweightClassifier"]


class LightweightClassifier(Module):
    """Stem + branch classifier extracted from a trained BranchyNet."""

    IN_SHAPE = (1, 28, 28)

    def __init__(self, stem: Sequential, head: Sequential) -> None:
        super().__init__()
        self.stem = stem
        self.head = head

    @classmethod
    def from_branchynet(cls, branchy: "Module") -> "LightweightClassifier":
        """Truncate a (trained) :class:`~repro.models.branchynet.BranchyLeNet`.

        The returned classifier *shares parameters* with the source model
        (truncation, not a copy) — exactly what "obtained by truncating
        the early-exit branch" means.  Call :meth:`detached` afterwards if
        an independent copy is needed.
        """
        if not hasattr(branchy, "stem") or not hasattr(branchy, "branch"):
            raise TypeError(f"expected a BranchyNet-style model, got {type(branchy).__name__}")
        return cls(branchy.stem, branchy.branch)

    @classmethod
    def truncate_lenet(
        cls,
        lenet: "Module",
        keep_layers: int = 3,
        num_classes: int = 10,
        rng: np.random.Generator | int | None = None,
    ) -> "LightweightClassifier":
        """Generalization to non-BranchyNet DNNs (paper §III-B): keep the
        first ``keep_layers`` feature layers of a LeNet and append a fresh
        output head (which must then be fine-tuned)."""
        rng = as_generator(rng)
        if not hasattr(lenet, "features"):
            raise TypeError(f"expected a LeNet-style model, got {type(lenet).__name__}")
        kept = lenet.features[:keep_layers]
        # Infer the flat width by propagating a probe through the kept part.
        with no_grad():
            probe = Tensor(np.zeros((1, *cls.IN_SHAPE), dtype=np.float32))
            flat_width = int(np.prod(kept(probe).shape[1:]))
        head = Sequential(Flatten(), Linear(flat_width, num_classes, rng=rng))
        return cls(kept, head)

    def detached(self) -> "LightweightClassifier":
        """Deep-copied classifier with independent parameters."""
        import copy

        return copy.deepcopy(self)

    def forward(self, x: Tensor) -> Tensor:
        """NCHW input → class logits."""
        return self.head(self.stem(x))

    def predict(
        self, images: np.ndarray, batch_size: int = 256, fastpath: bool = True
    ) -> np.ndarray:
        """Label predictions for a raw NCHW array (inference mode).

        Routes through the compiled stem+head plan by default; the plan
        reads the shared BranchyNet parameters live, so truncation stays
        truncation (weight updates in the source model are visible).
        """
        self.eval()
        images = np.ascontiguousarray(images, dtype=np.float32)
        out = np.empty(images.shape[0], dtype=np.int64)
        with no_grad():
            for start in range(0, images.shape[0], batch_size):
                sl = slice(start, start + batch_size)
                batch = images[sl]
                if fastpath:
                    logits = self.inference_plan(
                        batch.shape, (self.stem, self.head), key="full"
                    ).run(batch)
                else:
                    logits = self.forward(Tensor(batch)).data
                out[sl] = logits.argmax(axis=1)
        return out

    def stages(self) -> list[tuple[str, Sequential]]:
        return [("stem", self.stem), ("head", self.head)]
