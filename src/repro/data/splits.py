"""Train/test splitting and stratified subsetting."""

from __future__ import annotations

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.utils.rng import as_generator, stratified_indices

__all__ = ["train_test_split", "stratified_subset"]


def train_test_split(
    dataset: ArrayDataset,
    test_fraction: float = 0.2,
    rng: np.random.Generator | int | None = None,
    stratify: bool = True,
) -> tuple[ArrayDataset, ArrayDataset]:
    """Split into (train, test), optionally stratified by class label."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = as_generator(rng)
    n = len(dataset)
    if stratify:
        test_idx = stratified_indices(dataset.labels, test_fraction, rng)
    else:
        test_idx = rng.choice(n, size=int(round(test_fraction * n)), replace=False)
    mask = np.ones(n, dtype=bool)
    mask[test_idx] = False
    return dataset.select(np.flatnonzero(mask)), dataset.select(test_idx)


def stratified_subset(
    dataset: ArrayDataset,
    fraction: float,
    rng: np.random.Generator | int | None = None,
    by: str | None = None,
) -> ArrayDataset:
    """Subset preserving class balance (and, via ``by``, any meta column).

    The scalability experiments (Figs 6-8) stratify on the *joint* key of
    class label and hard/easy flag, so the hard-image proportion stays
    constant as the dataset-size ratio shrinks — exactly the paper's
    protocol ("the proportion of hard test images used in each experiment
    remained roughly the same").
    """
    rng = as_generator(rng)
    labels = dataset.labels
    if by is not None:
        if by not in dataset.meta:
            raise KeyError(f"meta column {by!r} not present; have {sorted(dataset.meta)}")
        flag = dataset.meta[by].astype(np.int64)
        joint = labels * 2 + flag  # unique id per (class, flag) pair
        idx = stratified_indices(joint, fraction, rng)
    else:
        idx = stratified_indices(labels, fraction, rng)
    return dataset.select(idx)
