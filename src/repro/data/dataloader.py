"""Mini-batch iteration over in-memory datasets.

Batches are produced as contiguous array slices of a (possibly shuffled)
index permutation — one fancy-index gather per batch, no per-sample
Python loop (guide: vectorize the hot path).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.data.dataset import Dataset
from repro.utils.rng import as_generator

__all__ = ["DataLoader"]


class DataLoader:
    """Iterate (images, labels) mini-batches.

    Parameters
    ----------
    dataset:
        Any :class:`~repro.data.dataset.Dataset` exposing ``images``/``labels``.
    batch_size:
        Samples per batch (last batch may be smaller unless ``drop_last``).
    shuffle:
        Re-permute sample order each epoch.
    rng:
        Generator (or seed) driving the permutation; required for
        deterministic experiments when ``shuffle=True``.
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int = 64,
        shuffle: bool = False,
        drop_last: bool = False,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.rng = as_generator(rng)
        # Materialize once: datasets are in-memory arrays in this library.
        self._images = dataset.images
        self._labels = dataset.labels

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self.rng.permutation(n) if self.shuffle else np.arange(n)
        stop = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, stop, self.batch_size):
            idx = order[start : start + self.batch_size]
            yield self._images[idx], self._labels[idx]
