"""Array-level dataset transforms (all vectorized over the batch axis)."""

from __future__ import annotations

import numpy as np

__all__ = ["normalize", "flatten", "unflatten", "to_unit_sum", "from_unit_sum", "clip01"]


def normalize(images: np.ndarray, mean: float, std: float) -> np.ndarray:
    """Standardize pixel values: (x - mean) / std."""
    if std <= 0:
        raise ValueError(f"std must be positive, got {std}")
    return ((images - mean) / std).astype(np.float32)


def flatten(images: np.ndarray) -> np.ndarray:
    """(N, C, H, W) → (N, C*H*W) — the MLP autoencoder's input layout."""
    return np.ascontiguousarray(images.reshape(images.shape[0], -1))


def unflatten(vectors: np.ndarray, shape: tuple[int, int, int]) -> np.ndarray:
    """(N, D) → (N, C, H, W) given per-sample shape (C, H, W)."""
    c, h, w = shape
    if vectors.shape[1] != c * h * w:
        raise ValueError(f"cannot unflatten width {vectors.shape[1]} into {shape}")
    return np.ascontiguousarray(vectors.reshape(vectors.shape[0], c, h, w))


def to_unit_sum(images: np.ndarray, eps: float = 1e-8) -> np.ndarray:
    """Scale each sample to sum 1 (probability-image representation).

    Needed when the autoencoder's output head is Softmax, as specified in
    the paper's Table I: a softmax layer emits a distribution over 784
    pixels, so reconstruction targets must live on the same simplex.
    """
    flat = images.reshape(images.shape[0], -1)
    sums = flat.sum(axis=1, keepdims=True)
    scaled = flat / np.maximum(sums, eps)
    return scaled.reshape(images.shape).astype(np.float32)


def from_unit_sum(images: np.ndarray) -> np.ndarray:
    """Rescale probability-images back to peak value 1 for display/classification."""
    flat = images.reshape(images.shape[0], -1)
    peak = flat.max(axis=1, keepdims=True)
    scaled = flat / np.maximum(peak, 1e-8)
    return scaled.reshape(images.shape).astype(np.float32)


def clip01(images: np.ndarray) -> np.ndarray:
    """Clamp to the valid pixel range in place-friendly fashion."""
    return np.clip(images, 0.0, 1.0).astype(np.float32)
