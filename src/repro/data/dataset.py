"""Dataset containers.

An image dataset is (images NCHW float32 in [0,1], integer labels), plus
optional per-sample metadata arrays (e.g. the generation-time ``is_hard``
flag, or the BranchyNet-assigned easy/hard label).
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

import numpy as np

__all__ = ["Dataset", "ArrayDataset", "Subset", "ConcatDataset"]


class Dataset:
    """Abstract random-access dataset of (image, label) pairs."""

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index: int) -> tuple[np.ndarray, int]:
        raise NotImplementedError

    @property
    def images(self) -> np.ndarray:
        raise NotImplementedError

    @property
    def labels(self) -> np.ndarray:
        raise NotImplementedError


class ArrayDataset(Dataset):
    """In-memory dataset backed by NumPy arrays.

    Parameters
    ----------
    images:
        float32 array shaped (N, C, H, W), values in [0, 1].
    labels:
        integer array shaped (N,).
    meta:
        optional per-sample arrays, each of length N (e.g. ``is_hard``).
    """

    def __init__(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        meta: Mapping[str, np.ndarray] | None = None,
    ) -> None:
        images = np.asarray(images, dtype=np.float32)
        labels = np.asarray(labels, dtype=np.int64)
        if images.ndim != 4:
            raise ValueError(f"images must be NCHW, got shape {images.shape}")
        if labels.ndim != 1 or labels.shape[0] != images.shape[0]:
            raise ValueError(
                f"labels must be (N,) matching images: images N={images.shape[0]}, "
                f"labels shape={labels.shape}"
            )
        self._images = images
        self._labels = labels
        self.meta: dict[str, np.ndarray] = {}
        for key, value in (meta or {}).items():
            value = np.asarray(value)
            if value.shape[0] != len(labels):
                raise ValueError(f"meta[{key!r}] length {value.shape[0]} != N {len(labels)}")
            self.meta[key] = value

    def __len__(self) -> int:
        return self._images.shape[0]

    def __getitem__(self, index: int) -> tuple[np.ndarray, int]:
        return self._images[index], int(self._labels[index])

    @property
    def images(self) -> np.ndarray:
        return self._images

    @property
    def labels(self) -> np.ndarray:
        return self._labels

    @property
    def num_classes(self) -> int:
        return int(self._labels.max()) + 1 if len(self) else 0

    def with_meta(self, **extra: np.ndarray) -> "ArrayDataset":
        """Return a copy of this dataset with additional metadata columns."""
        merged = dict(self.meta)
        merged.update(extra)
        return ArrayDataset(self._images, self._labels, merged)

    def select(self, indices: np.ndarray | Sequence[int]) -> "ArrayDataset":
        """Row-subset by index array (meta columns follow along)."""
        indices = np.asarray(indices)
        return ArrayDataset(
            self._images[indices],
            self._labels[indices],
            {k: v[indices] for k, v in self.meta.items()},
        )

    def class_indices(self, label: int) -> np.ndarray:
        return np.flatnonzero(self._labels == label)


class Subset(Dataset):
    """A view over a parent dataset restricted to ``indices``."""

    def __init__(self, parent: Dataset, indices: np.ndarray | Sequence[int]) -> None:
        self.parent = parent
        self.indices = np.asarray(indices, dtype=np.int64)
        if len(self.indices) and (
            self.indices.min() < 0 or self.indices.max() >= len(parent)
        ):
            raise IndexError("subset index out of range of parent dataset")

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, index: int) -> tuple[np.ndarray, int]:
        return self.parent[int(self.indices[index])]

    @property
    def images(self) -> np.ndarray:
        return self.parent.images[self.indices]

    @property
    def labels(self) -> np.ndarray:
        return self.parent.labels[self.indices]


class ConcatDataset(Dataset):
    """Concatenation of several datasets (used to mix easy/hard pools)."""

    def __init__(self, parts: Sequence[Dataset]) -> None:
        if not parts:
            raise ValueError("ConcatDataset needs at least one part")
        self.parts = list(parts)
        self._offsets = np.cumsum([0] + [len(p) for p in self.parts])

    def __len__(self) -> int:
        return int(self._offsets[-1])

    def __getitem__(self, index: int) -> tuple[np.ndarray, int]:
        if index < 0:
            index += len(self)
        part = int(np.searchsorted(self._offsets, index, side="right")) - 1
        return self.parts[part][index - int(self._offsets[part])]

    @property
    def images(self) -> np.ndarray:
        return np.concatenate([p.images for p in self.parts], axis=0)

    @property
    def labels(self) -> np.ndarray:
        return np.concatenate([p.labels for p in self.parts], axis=0)
