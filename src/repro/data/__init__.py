"""`repro.data` — dataset substrate.

The paper evaluates on MNIST, Fashion-MNIST and Kuzushiji-MNIST.  Offline,
those archives are unavailable, so :mod:`repro.data.synth` procedurally
generates drop-in equivalents: 28x28 grayscale, 10 classes, with a
controlled fraction of *hard* samples (blur/noise/occlusion/warp) tuned so
BranchyNet's early-exit rates match the paper (see DESIGN.md §2).
"""

from repro.data.dataset import Dataset, ArrayDataset, Subset, ConcatDataset
from repro.data.dataloader import DataLoader
from repro.data.splits import train_test_split, stratified_subset
from repro.data.synth.registry import load_dataset, DATASET_SPECS, SyntheticSpec

__all__ = [
    "Dataset",
    "ArrayDataset",
    "Subset",
    "ConcatDataset",
    "DataLoader",
    "train_test_split",
    "stratified_subset",
    "load_dataset",
    "DATASET_SPECS",
    "SyntheticSpec",
]
