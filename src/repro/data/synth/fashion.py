"""Fashion-MNIST-like generator: 10 clothing-item silhouettes.

Classes follow the FMNIST ordering: 0 t-shirt, 1 trouser, 2 pullover,
3 dress, 4 coat, 5 sandal, 6 shirt, 7 sneaker, 8 bag, 9 ankle boot.
Each class is a union of filled primitives (polygons / ellipses) with
per-sample vertex jitter, affine deformation, and fabric-texture noise.
"""

from __future__ import annotations

import numpy as np

from repro.data.synth import render

__all__ = ["render_fashion", "CLASS_NAMES", "NUM_CLASSES"]

NUM_CLASSES = 10
CLASS_NAMES = (
    "t-shirt",
    "trouser",
    "pullover",
    "dress",
    "coat",
    "sandal",
    "shirt",
    "sneaker",
    "bag",
    "ankle-boot",
)


def _poly(*points: tuple[float, float]) -> np.ndarray:
    return np.asarray(points, dtype=np.float32)


def _class_primitives(label: int) -> tuple[list[np.ndarray], list[tuple]]:
    """Return (polygons, ellipses) for a class; ellipse = (cx,cy,rx,ry,ang)."""
    if label == 0:  # t-shirt: torso + short sleeves
        return (
            [
                _poly((0.36, 0.28), (0.64, 0.28), (0.66, 0.80), (0.34, 0.80)),
                _poly((0.18, 0.28), (0.36, 0.28), (0.36, 0.44), (0.14, 0.40)),
                _poly((0.64, 0.28), (0.82, 0.28), (0.86, 0.40), (0.64, 0.44)),
            ],
            [],
        )
    if label == 1:  # trouser: two legs + waistband
        return (
            [
                _poly((0.36, 0.18), (0.64, 0.18), (0.64, 0.28), (0.36, 0.28)),
                _poly((0.36, 0.28), (0.49, 0.28), (0.46, 0.84), (0.34, 0.84)),
                _poly((0.51, 0.28), (0.64, 0.28), (0.66, 0.84), (0.54, 0.84)),
            ],
            [],
        )
    if label == 2:  # pullover: torso + long sleeves
        return (
            [
                _poly((0.36, 0.26), (0.64, 0.26), (0.66, 0.80), (0.34, 0.80)),
                _poly((0.18, 0.26), (0.36, 0.26), (0.36, 0.78), (0.22, 0.78)),
                _poly((0.64, 0.26), (0.82, 0.26), (0.78, 0.78), (0.64, 0.78)),
            ],
            [],
        )
    if label == 3:  # dress: fitted top flaring to hem
        return (
            [
                _poly((0.42, 0.16), (0.58, 0.16), (0.60, 0.42), (0.40, 0.42)),
                _poly((0.40, 0.42), (0.60, 0.42), (0.72, 0.86), (0.28, 0.86)),
            ],
            [],
        )
    if label == 4:  # coat: long body + long sleeves + collar wedge
        return (
            [
                _poly((0.34, 0.22), (0.66, 0.22), (0.68, 0.86), (0.32, 0.86)),
                _poly((0.16, 0.24), (0.34, 0.22), (0.34, 0.80), (0.20, 0.80)),
                _poly((0.66, 0.22), (0.84, 0.24), (0.80, 0.80), (0.66, 0.80)),
            ],
            [],
        )
    if label == 5:  # sandal: sole bar + two thin straps
        return (
            [
                _poly((0.16, 0.62), (0.84, 0.60), (0.86, 0.72), (0.16, 0.74)),
                _poly((0.30, 0.40), (0.38, 0.38), (0.50, 0.62), (0.42, 0.63)),
                _poly((0.56, 0.36), (0.64, 0.36), (0.70, 0.60), (0.62, 0.62)),
            ],
            [],
        )
    if label == 6:  # shirt: torso + mid sleeves + dark placket gap drawn later
        return (
            [
                _poly((0.37, 0.24), (0.63, 0.24), (0.65, 0.82), (0.35, 0.82)),
                _poly((0.19, 0.24), (0.37, 0.24), (0.37, 0.58), (0.17, 0.54)),
                _poly((0.63, 0.24), (0.81, 0.24), (0.83, 0.54), (0.63, 0.58)),
            ],
            [],
        )
    if label == 7:  # sneaker: sole + low rounded upper
        return (
            [_poly((0.14, 0.66), (0.86, 0.64), (0.88, 0.76), (0.14, 0.78))],
            [(0.46, 0.58, 0.30, 0.14, -4.0)],
        )
    if label == 8:  # bag: body + handle ring
        return (
            [_poly((0.24, 0.42), (0.76, 0.42), (0.80, 0.82), (0.20, 0.82))],
            [(0.50, 0.38, 0.16, 0.14, 0.0)],  # handle; inner hole subtracted below
        )
    if label == 9:  # ankle boot: shaft + foot + sole
        return (
            [
                _poly((0.34, 0.24), (0.56, 0.24), (0.58, 0.58), (0.34, 0.58)),
                _poly((0.34, 0.58), (0.58, 0.58), (0.82, 0.66), (0.84, 0.78), (0.34, 0.78)),
            ],
            [],
        )
    raise ValueError(f"label must be 0-9, got {label}")


# Classes whose ellipse primitive is a *ring* (hole subtracted): bag handle.
_RING_CLASSES = {8}
# Shirt gets a vertical placket line (pixel-space) to separate it from t-shirt.
_PLACKET_CLASSES = {6}


def render_fashion(
    labels: np.ndarray,
    rng: np.random.Generator,
    side: int = 28,
    jitter: float = 1.0,
) -> np.ndarray:
    """Render clothing silhouettes for ``labels`` → (N, side, side)."""
    labels = np.asarray(labels, dtype=np.int64)
    n = labels.shape[0]
    out = np.zeros((n, side, side), dtype=np.float32)
    for label in np.unique(labels):
        idx = np.flatnonzero(labels == label)
        polygons, ellipses = _class_primitives(int(label))
        mats = render.random_affine(
            rng,
            idx.size,
            max_rotate_deg=5.0 * jitter,
            scale_range=(1.0 - 0.10 * jitter, 1.0 + 0.10 * jitter),
            max_translate=0.04 * jitter,
            max_shear=0.06 * jitter,
        )
        mask = np.zeros((idx.size, side, side), dtype=bool)
        for poly in polygons:
            batch = np.broadcast_to(poly, (idx.size, *poly.shape)).copy()
            batch += rng.normal(0.0, 0.010 * jitter, size=batch.shape).astype(np.float32)
            mask |= render.fill_polygons(render.apply_affine(batch, mats), side=side)
        for cx, cy, rx, ry, ang in ellipses:
            params = np.tile(
                np.asarray([[cx, cy, rx, ry, ang]], dtype=np.float32), (idx.size, 1)
            )
            params[:, :2] += rng.normal(0.0, 0.008 * jitter, size=(idx.size, 2))
            params[:, 2:4] *= rng.uniform(
                1 - 0.08 * jitter, 1 + 0.08 * jitter, size=(idx.size, 2)
            )
            ell = render.fill_ellipses(params, side=side)
            if int(label) in _RING_CLASSES:
                inner = params.copy()
                inner[:, 2:4] *= 0.55
                ell &= ~render.fill_ellipses(inner, side=side)
            mask |= ell
        imgs = mask.astype(np.float32)
        if int(label) in _PLACKET_CLASSES:
            # Vertical gap down the torso — the feature separating "shirt"
            # from "t-shirt" silhouettes.
            col = (side // 2) + rng.integers(-1, 2, idx.size)
            rows = np.arange(int(0.28 * side), int(0.78 * side))
            imgs[np.arange(idx.size)[:, None], rows[None, :], col[:, None]] *= 0.25
        # Fabric texture + soft edges.
        imgs *= 0.82 + 0.18 * rng.random((idx.size, side, side)).astype(np.float32)
        out[idx] = render.smooth(imgs, sigma=0.55)
    return np.clip(out, 0.0, 1.0)
