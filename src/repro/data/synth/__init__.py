"""Procedural 28x28 grayscale dataset generators (MNIST-family stand-ins).

See DESIGN.md §2 for the substitution rationale: the generators reproduce
the property CBNet exploits — a dataset-specific mix of *easy* samples
(clean, prototypical) and *hard* samples (blurred, noisy, occluded,
warped) — with hard fractions tuned to the paper's early-exit rates.
"""

from repro.data.synth.registry import load_dataset, DATASET_SPECS, SyntheticSpec, generate_split
from repro.data.synth.corruption import corrupt_batch, CORRUPTIONS

__all__ = [
    "load_dataset",
    "generate_split",
    "DATASET_SPECS",
    "SyntheticSpec",
    "corrupt_batch",
    "CORRUPTIONS",
]
