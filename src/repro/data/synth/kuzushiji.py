"""Kuzushiji-MNIST-like generator: cursive stroke glyphs.

Each of the 10 classes is a fixed set of smooth random strokes (Catmull-
Rom splines through class-template control points drawn from a *fixed*
per-class seed, so the classes are stable across runs and processes).
Per-sample variation: control-point jitter + affine + stroke width.

Cursive Japanese has higher intra-class variability than digits, which is
exactly why KMNIST shows the lowest early-exit rate in the paper (63%);
the jitter magnitudes here are correspondingly larger than in
:mod:`repro.data.synth.digits`.
"""

from __future__ import annotations

import numpy as np

from repro.data.synth import render

__all__ = ["kuzushiji_template", "render_kuzushiji", "NUM_CLASSES"]

NUM_CLASSES = 10
_TEMPLATE_SEED = 7177  # fixed template universe: classes identical across runs
_CTRL_POINTS = 5
_STROKES_PER_CLASS = 3
_CURVE_SAMPLES = 24


def _catmull_rom(ctrl: np.ndarray, samples: int) -> np.ndarray:
    """Catmull-Rom spline through control points; ctrl (..., P, 2)."""
    p = ctrl.shape[-2]
    if p < 4:
        raise ValueError(f"need >= 4 control points, got {p}")
    # Parameter positions: one curve segment per interior control pair.
    segments = p - 3
    ts = np.linspace(0.0, 1.0, samples // segments + 1, dtype=np.float32)[:-1]
    pieces = []
    for s in range(segments):
        p0 = ctrl[..., s, :]
        p1 = ctrl[..., s + 1, :]
        p2 = ctrl[..., s + 2, :]
        p3 = ctrl[..., s + 3, :]
        t = ts[:, None]
        t2, t3 = t * t, t * t * t
        point = 0.5 * (
            (2 * p1)[..., None, :]
            + (p2 - p0)[..., None, :] * t
            + (2 * p0 - 5 * p1 + 4 * p2 - p3)[..., None, :] * t2
            + (-p0 + 3 * p1 - 3 * p2 + p3)[..., None, :] * t3
        )
        pieces.append(point)
    pieces.append(ctrl[..., -2, :][..., None, :])
    return np.concatenate(pieces, axis=-2).astype(np.float32)


def kuzushiji_template(label: int) -> np.ndarray:
    """Control points for one class: (strokes, ctrl_points, 2)."""
    if not 0 <= label <= 9:
        raise ValueError(f"label must be 0-9, got {label}")
    rng = np.random.default_rng(_TEMPLATE_SEED + label)
    ctrl = rng.uniform(0.22, 0.78, size=(_STROKES_PER_CLASS, _CTRL_POINTS, 2))
    # Sort each stroke's control points vertically — calligraphic strokes
    # flow downward, which keeps the splines from doubling back wildly.
    order = np.argsort(ctrl[:, :, 1], axis=1)
    ctrl = np.take_along_axis(ctrl, order[:, :, None], axis=1)
    return ctrl.astype(np.float32)


def render_kuzushiji(
    labels: np.ndarray,
    rng: np.random.Generator,
    side: int = 28,
    jitter: float = 1.0,
) -> np.ndarray:
    """Render cursive glyphs for ``labels`` → (N, side, side)."""
    labels = np.asarray(labels, dtype=np.int64)
    n = labels.shape[0]
    out = np.zeros((n, side, side), dtype=np.float32)
    for label in np.unique(labels):
        idx = np.flatnonzero(labels == label)
        template = kuzushiji_template(int(label))  # (S, P, 2)
        mats = render.random_affine(
            rng,
            idx.size,
            max_rotate_deg=12.0 * jitter,
            scale_range=(1.0 - 0.14 * jitter, 1.0 + 0.14 * jitter),
            max_translate=0.05 * jitter,
            max_shear=0.12 * jitter,
        )
        polys = []
        for s in range(template.shape[0]):
            ctrl = np.broadcast_to(
                template[s], (idx.size, _CTRL_POINTS, 2)
            ).copy()
            ctrl += rng.normal(0.0, 0.020 * jitter, size=ctrl.shape).astype(np.float32)
            curve = _catmull_rom(ctrl, _CURVE_SAMPLES)
            polys.append(render.apply_affine(curve, mats))
        thickness = rng.uniform(0.026, 0.044, idx.size).astype(np.float32)
        out[idx] = render.raster_polylines(polys, thickness, side=side)
    return out
