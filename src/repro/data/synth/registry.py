"""Dataset registry: named synthetic datasets with paper-matched hard
fractions, disk caching, and parallel generation.

``load_dataset("fmnist", ...)`` is the single entry point the rest of the
library uses; it returns train/test :class:`ArrayDataset` objects whose
``meta["is_hard"]`` column records the *generation-time* difficulty flag
(ground truth for diagnostics — the operational easy/hard label used to
train the autoencoder comes from BranchyNet, see
:mod:`repro.core.labeling`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.data.synth.corruption import corrupt_batch
from repro.data.synth.digits import render_digits
from repro.data.synth.fashion import render_fashion
from repro.data.synth.kuzushiji import render_kuzushiji
from repro.utils.cache import ArtifactCache
from repro.utils.rng import as_generator, derive_seed

__all__ = [
    "SyntheticSpec",
    "DATASET_SPECS",
    "generate_split",
    "generate_split_parallel",
    "load_dataset",
    "clear_dataset_memo",
]

Renderer = Callable[[np.ndarray, np.random.Generator], np.ndarray]


@dataclass(frozen=True)
class SyntheticSpec:
    """Recipe for one synthetic dataset.

    ``hard_fraction`` values are tuned to the paper: MNIST has ~5% hard
    images, FMNIST ~23% (Fig. 3), and KMNIST ~37% (from the 63.08%
    early-exit rate reported in §IV-D).
    """

    name: str
    renderer: Renderer
    hard_fraction: float
    num_classes: int = 10
    side: int = 28
    default_train: int = 6000
    default_test: int = 1000
    # Nuisance magnitude for *clean* samples (1.0 = renderer default).
    # Lower values make easy samples more prototypical, which sharpens
    # branch confidence — the knob that aligns each dataset's early-exit
    # rate with the paper's measured operating point.
    jitter: float = 1.0
    # Corruption recipe for hard samples.
    severity_range: tuple[float, float] = (0.35, 1.0)
    ops_per_sample: tuple[int, int] = (1, 2)
    corruption_ops: tuple[str, ...] | None = None


DATASET_SPECS: dict[str, SyntheticSpec] = {
    "mnist": SyntheticSpec(
        name="mnist", renderer=render_digits, hard_fraction=0.05, jitter=0.72
    ),
    # FMNIST hard recipe: detail-destroying but silhouette-preserving ops
    # (no occlusion) — confuses the early-exit branch, which keys on fine
    # texture, while leaving enough shape for the converting autoencoder
    # to recover the class, matching the paper's accuracy ordering
    # (CBNet >= BranchyNet on FMNIST).
    "fmnist": SyntheticSpec(
        name="fmnist",
        renderer=render_fashion,
        hard_fraction=0.23,
        severity_range=(0.8, 1.0),
        ops_per_sample=(2, 3),
        corruption_ops=("scribble", "blur", "noise", "elastic", "lowres"),
    ),
    "kmnist": SyntheticSpec(
        name="kmnist",
        renderer=render_kuzushiji,
        hard_fraction=0.37,
        jitter=0.8,
        severity_range=(0.5, 1.0),
    ),
}


def _balanced_labels(n: int, num_classes: int, rng: np.random.Generator) -> np.ndarray:
    """Exactly class-balanced label vector, shuffled (MNIST-family style)."""
    per = n // num_classes
    labels = np.repeat(np.arange(num_classes, dtype=np.int64), per)
    remainder = n - labels.size
    if remainder:
        labels = np.concatenate([labels, rng.choice(num_classes, remainder, replace=False)])
    rng.shuffle(labels)
    return labels


def generate_split(
    spec: SyntheticSpec,
    n: int,
    seed: int,
    hard_fraction: float | None = None,
) -> ArrayDataset:
    """Generate one split of ``n`` samples.

    Returns an :class:`ArrayDataset` with NCHW float32 images in [0, 1]
    and meta columns ``is_hard`` (bool) and ``severity`` (float, 0 for
    easy samples).
    """
    if n <= 0:
        raise ValueError(f"split size must be positive, got {n}")
    rng = as_generator(seed)
    hf = spec.hard_fraction if hard_fraction is None else hard_fraction
    if not 0.0 <= hf < 1.0:
        raise ValueError(f"hard_fraction must be in [0, 1), got {hf}")

    labels = _balanced_labels(n, spec.num_classes, rng)
    images = spec.renderer(labels, rng, jitter=spec.jitter)  # (N, H, W)

    n_hard = int(round(hf * n))
    is_hard = np.zeros(n, dtype=bool)
    if n_hard:
        hard_idx = rng.choice(n, size=n_hard, replace=False)
        is_hard[hard_idx] = True
        images[hard_idx] = corrupt_batch(
            images[hard_idx],
            rng,
            severity_range=spec.severity_range,
            ops_per_sample=spec.ops_per_sample,
            op_names=list(spec.corruption_ops) if spec.corruption_ops else None,
        )
    severity = np.where(is_hard, 1.0, 0.0).astype(np.float32)
    return ArrayDataset(
        images[:, None, :, :],  # add channel axis → NCHW
        labels,
        meta={"is_hard": is_hard, "severity": severity},
    )


# Chunk size for parallel generation.  Fixed (not worker-dependent) so
# the generated dataset is bit-identical regardless of worker count: each
# chunk's RNG stream is derived from (seed, chunk index) alone.
_PARALLEL_CHUNK = 1000


def _generate_chunk(args: tuple[str, int, int, float | None]) -> ArrayDataset:
    """Module-level worker (must be picklable for the process pool)."""
    spec_name, chunk_n, chunk_seed, hard_fraction = args
    return generate_split(DATASET_SPECS[spec_name], chunk_n, chunk_seed, hard_fraction)


def generate_split_parallel(
    spec: SyntheticSpec,
    n: int,
    seed: int,
    hard_fraction: float | None = None,
    n_workers: int | None = None,
) -> ArrayDataset:
    """Generate a split by fanning fixed-size chunks over a process pool.

    Deterministic for a given ``seed`` independent of ``n_workers`` (each
    chunk derives its own RNG stream); falls back to the serial generator
    below the chunk size.
    """
    from repro.parallel.pool import parallel_map

    if n <= _PARALLEL_CHUNK:
        return generate_split(spec, n, seed, hard_fraction)
    sizes = [_PARALLEL_CHUNK] * (n // _PARALLEL_CHUNK)
    if n % _PARALLEL_CHUNK:
        sizes.append(n % _PARALLEL_CHUNK)
    jobs = [
        (spec.name, size, derive_seed(seed, "chunk", i), hard_fraction)
        for i, size in enumerate(sizes)
    ]
    chunks = parallel_map(_generate_chunk, jobs, n_workers=n_workers)
    return ArrayDataset(
        np.concatenate([c.images for c in chunks], axis=0),
        np.concatenate([c.labels for c in chunks], axis=0),
        meta={
            key: np.concatenate([c.meta[key] for c in chunks], axis=0)
            for key in chunks[0].meta
        },
    )


def load_dataset(
    name: str,
    n_train: int | None = None,
    n_test: int | None = None,
    seed: int = 0,
    hard_fraction: float | None = None,
    cache: bool = True,
) -> dict[str, ArrayDataset]:
    """Load (or generate and cache) a named dataset.

    Returns ``{"train": ArrayDataset, "test": ArrayDataset}``.  Train and
    test derive from disjoint sub-seeds of ``seed``.  Generation of large
    splits fans out over a process pool (deterministic per seed).

    Cached loads are additionally memoized in-process, so repeat calls
    within one experiment run return the *same* dataset objects: treat
    them as read-only (copy before mutating), and see
    :func:`clear_dataset_memo` for releasing them.
    """
    if name not in DATASET_SPECS:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(DATASET_SPECS)}")
    spec = DATASET_SPECS[name]
    n_train = spec.default_train if n_train is None else n_train
    n_test = spec.default_test if n_test is None else n_test

    def build() -> dict[str, ArrayDataset]:
        return {
            "train": generate_split_parallel(
                spec, n_train, derive_seed(seed, name, "train"), hard_fraction
            ),
            "test": generate_split_parallel(
                spec, n_test, derive_seed(seed, name, "test"), hard_fraction
            ),
        }

    if not cache:
        return build()
    key = {
        "kind": "synthetic-dataset",
        "name": name,
        "n_train": n_train,
        "n_test": n_test,
        "seed": seed,
        "hard_fraction": hard_fraction,
        # The generation recipe is part of the identity: editing a spec's
        # difficulty knobs must invalidate cached datasets.
        "spec": {
            "jitter": spec.jitter,
            "severity_range": list(spec.severity_range),
            "ops_per_sample": list(spec.ops_per_sample),
            "corruption_ops": list(spec.corruption_ops) if spec.corruption_ops else None,
            "spec_hard_fraction": spec.hard_fraction,
        },
        "version": 5,  # bump to invalidate caches when renderer *code* changes
    }
    memo_key = json.dumps(key, sort_keys=True)
    datasets = _MEMO.get(memo_key)
    if datasets is None:
        datasets = ArtifactCache().get_or_compute(key, build)
        _MEMO[memo_key] = datasets
    return datasets


# In-process memo over the disk cache: an experiment run asks for the
# same (dataset, sizes, seed) many times — once per study — and should
# pay the deserialization once.  Returned datasets are shared objects;
# callers treat them as read-only (everything downstream indexes, never
# mutates).
_MEMO: dict[str, dict[str, ArrayDataset]] = {}


def clear_dataset_memo() -> None:
    """Drop the in-process dataset memo (tests / memory pressure).

    Long-lived processes touching many (dataset, size, seed) variants
    accumulate them here for the process lifetime; this releases them
    (the disk cache is untouched, so the next ``load_dataset`` is still
    a deserialize, not a regeneration).
    """
    _MEMO.clear()
