"""MNIST-like handwritten-digit generator.

Each digit class is a fixed stroke template (polylines + elliptical arcs
on the unit canvas) rendered with per-sample affine jitter, control-point
noise, and stroke-width variation — the same nuisance factors that make
real handwriting vary.
"""

from __future__ import annotations

import numpy as np

from repro.data.synth import render

__all__ = ["digit_template", "render_digits", "NUM_CLASSES"]

NUM_CLASSES = 10
_ARC_N = 18


def _seg(*points: tuple[float, float]) -> np.ndarray:
    return np.asarray(points, dtype=np.float32)


def digit_template(digit: int) -> list[np.ndarray]:
    """Stroke polylines (each (P, 2)) for one digit class."""
    if not 0 <= digit <= 9:
        raise ValueError(f"digit must be 0-9, got {digit}")
    arc = render.sample_arc
    if digit == 0:
        return [arc((0.5, 0.5), 0.20, 0.30, 0.0, 360.0, n=2 * _ARC_N)]
    if digit == 1:
        return [_seg((0.38, 0.32), (0.52, 0.18), (0.52, 0.82))]
    if digit == 2:
        top = arc((0.5, 0.36), 0.18, 0.17, 180.0, 365.0, n=_ARC_N)
        return [
            np.concatenate([top, _seg((0.68, 0.41), (0.32, 0.80), (0.70, 0.80))]),
        ]
    if digit == 3:
        return [
            arc((0.47, 0.345), 0.16, 0.155, -150.0, 90.0, n=_ARC_N),
            arc((0.47, 0.655), 0.18, 0.165, -90.0, 150.0, n=_ARC_N),
        ]
    if digit == 4:
        return [
            _seg((0.60, 0.18), (0.30, 0.56), (0.75, 0.56)),
            _seg((0.62, 0.30), (0.62, 0.82)),
        ]
    if digit == 5:
        return [
            _seg((0.68, 0.20), (0.35, 0.20), (0.33, 0.47)),
            arc((0.47, 0.63), 0.185, 0.185, -105.0, 140.0, n=_ARC_N),
        ]
    if digit == 6:
        return [
            _seg((0.64, 0.18), (0.46, 0.32), (0.36, 0.50), (0.33, 0.64)),
            arc((0.50, 0.64), 0.17, 0.17, 0.0, 360.0, n=2 * _ARC_N),
        ]
    if digit == 7:
        return [_seg((0.30, 0.20), (0.70, 0.20), (0.42, 0.82))]
    if digit == 8:
        return [
            arc((0.5, 0.345), 0.145, 0.15, 0.0, 360.0, n=2 * _ARC_N),
            arc((0.5, 0.665), 0.175, 0.17, 0.0, 360.0, n=2 * _ARC_N),
        ]
    # digit == 9
    return [
        arc((0.5, 0.36), 0.165, 0.165, 0.0, 360.0, n=2 * _ARC_N),
        _seg((0.665, 0.38), (0.645, 0.60), (0.545, 0.82)),
    ]


def render_digits(
    labels: np.ndarray,
    rng: np.random.Generator,
    side: int = 28,
    jitter: float = 1.0,
) -> np.ndarray:
    """Render a batch of digit images for ``labels`` → (N, side, side).

    ``jitter`` scales all nuisance magnitudes (0 = perfectly prototypical).
    Samples are grouped by class so each class renders as one vectorized
    batch.
    """
    labels = np.asarray(labels, dtype=np.int64)
    n = labels.shape[0]
    out = np.zeros((n, side, side), dtype=np.float32)
    for digit in np.unique(labels):
        idx = np.flatnonzero(labels == digit)
        template = digit_template(int(digit))
        mats = render.random_affine(
            rng,
            idx.size,
            max_rotate_deg=9.0 * jitter,
            scale_range=(1.0 - 0.12 * jitter, 1.0 + 0.12 * jitter),
            max_translate=0.05 * jitter,
            max_shear=0.10 * jitter,
        )
        polys = []
        for stroke in template:
            batch = np.broadcast_to(stroke, (idx.size, *stroke.shape)).copy()
            batch += rng.normal(0.0, 0.008 * jitter, size=batch.shape).astype(np.float32)
            polys.append(render.apply_affine(batch, mats))
        thickness = rng.uniform(0.030, 0.046, idx.size).astype(np.float32)
        out[idx] = render.raster_polylines(polys, thickness, side=side)
    return out
