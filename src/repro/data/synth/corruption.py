"""Hard-sample corruption operators.

The paper characterizes hard inputs as "low-resolution or blurry images
to complex images that are dissimilar to other images belonging to the
same class".  Each operator below implements one of those degradation
axes; a hard sample receives a random combination at a sampled severity.
All operators are vectorized over the batch axis and preserve [0, 1].
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from scipy import ndimage

__all__ = [
    "gaussian_blur",
    "additive_noise",
    "occlude",
    "elastic_warp",
    "low_resolution",
    "reduce_contrast",
    "scribble",
    "CORRUPTIONS",
    "corrupt_batch",
]

Array = np.ndarray


def gaussian_blur(images: Array, rng: np.random.Generator, severity: float) -> Array:
    """Blur: σ grows with severity (0.6 → 1.8 px)."""
    sigma = 0.6 + 1.2 * severity
    return ndimage.gaussian_filter(images, sigma=(0.0, sigma, sigma)).astype(np.float32)


def additive_noise(images: Array, rng: np.random.Generator, severity: float) -> Array:
    """Sensor-style Gaussian pixel noise."""
    std = 0.08 + 0.22 * severity
    noisy = images + rng.normal(0.0, std, size=images.shape).astype(np.float32)
    return np.clip(noisy, 0.0, 1.0)


def occlude(images: Array, rng: np.random.Generator, severity: float) -> Array:
    """Black out 1-2 random rectangles covering up to ~25% of the glyph."""
    n, h, w = images.shape
    out = images.copy()
    n_rects = 1 + int(severity > 0.5)
    rows = np.arange(h)
    cols = np.arange(w)
    for _ in range(n_rects):
        rh = rng.integers(max(2, int(0.10 * h)), max(3, int((0.14 + 0.18 * severity) * h)), n)
        rw = rng.integers(max(2, int(0.10 * w)), max(3, int((0.14 + 0.18 * severity) * w)), n)
        r0 = rng.integers(0, h - rh + 1)
        c0 = rng.integers(0, w - rw + 1)
        # Per-sample rectangles differ in size/place; broadcast row and
        # column interval masks and blank every rectangle in one write.
        row_mask = (rows[None, :] >= r0[:, None]) & (rows[None, :] < (r0 + rh)[:, None])
        col_mask = (cols[None, :] >= c0[:, None]) & (cols[None, :] < (c0 + rw)[:, None])
        out[row_mask[:, :, None] & col_mask[:, None, :]] = 0.0
    return out


def elastic_warp(images: Array, rng: np.random.Generator, severity: float) -> Array:
    """Elastic deformation (Simard et al.): smooth random displacement field.

    Fully batched: the smoothing filter and the resampling both run once
    over the whole (N, H, W) volume (a batch axis added to the coordinate
    grid keeps samples independent).
    """
    n, h, w = images.shape
    alpha = (2.0 + 4.0 * severity) * h / 28.0  # displacement magnitude, px
    sigma = 4.0
    dx = ndimage.gaussian_filter(rng.uniform(-1, 1, (n, h, w)), (0.0, sigma, sigma)) * alpha
    dy = ndimage.gaussian_filter(rng.uniform(-1, 1, (n, h, w)), (0.0, sigma, sigma)) * alpha
    b, rows, cols = np.meshgrid(
        np.arange(n), np.arange(h), np.arange(w), indexing="ij"
    )
    coords = np.stack([b, rows + dy, cols + dx])
    warped = ndimage.map_coordinates(images, coords, order=1, mode="constant")
    return warped.astype(np.float32)


def low_resolution(images: Array, rng: np.random.Generator, severity: float) -> Array:
    """Downsample then upsample (nearest) — the paper's "low-resolution" axis."""
    n, h, w = images.shape
    factor = 2 if severity < 0.6 else 3
    small = images[:, ::factor, ::factor]
    up = np.repeat(np.repeat(small, factor, axis=1), factor, axis=2)
    return up[:, :h, :w] if up.shape[1] >= h and up.shape[2] >= w else _pad_to(up, h, w)


def _pad_to(images: Array, h: int, w: int) -> Array:
    ph, pw = h - images.shape[1], w - images.shape[2]
    return np.pad(images, ((0, 0), (0, ph), (0, pw)))


def scribble(images: Array, rng: np.random.Generator, severity: float) -> Array:
    """Overlay 2-4 random distractor strokes.

    Models the paper's "complex images that are dissimilar to other images
    belonging to the same class": the glyph stays intact (so the class is
    recoverable by the converting autoencoder) but the clutter sharply
    raises the early-exit branch's prediction entropy.
    """
    from repro.data.synth import render  # local import avoids a cycle

    n, h, w = images.shape
    n_strokes = 2 + int(round(2 * severity))
    polys = []
    for _ in range(n_strokes):
        pts = rng.uniform(0.1, 0.9, size=(n, 3, 2)).astype(np.float32)
        polys.append(pts)
    thickness = rng.uniform(0.015, 0.015 + 0.02 * severity, n).astype(np.float32)
    overlay = render.raster_polylines(polys, thickness, side=h)
    strength = 0.5 + 0.5 * severity
    return np.clip(np.maximum(images, overlay * strength), 0.0, 1.0)


def reduce_contrast(images: Array, rng: np.random.Generator, severity: float) -> Array:
    """Compress the dynamic range toward mid-gray."""
    factor = 1.0 - (0.35 + 0.35 * severity)
    mean = images.mean(axis=(1, 2), keepdims=True)
    return np.clip(mean + (images - mean) * factor, 0.0, 1.0).astype(np.float32)


CORRUPTIONS: dict[str, Callable[[Array, np.random.Generator, float], Array]] = {
    "blur": gaussian_blur,
    "noise": additive_noise,
    "occlude": occlude,
    "elastic": elastic_warp,
    "lowres": low_resolution,
    "contrast": reduce_contrast,
    "scribble": scribble,
}


def corrupt_batch(
    images: Array,
    rng: np.random.Generator,
    severity_range: tuple[float, float] = (0.35, 1.0),
    ops_per_sample: tuple[int, int] = (1, 2),
    op_names: list[str] | None = None,
) -> Array:
    """Apply random corruption combos to a batch of (N, H, W) images.

    Samples are grouped by the drawn corruption recipe so each operator
    still runs vectorized over its group.
    """
    if images.ndim != 3:
        raise ValueError(f"expected (N, H, W), got shape {images.shape}")
    if images.shape[0] == 0:
        return images.copy()
    names = list(op_names or CORRUPTIONS.keys())
    unknown = set(names) - set(CORRUPTIONS)
    if unknown:
        raise KeyError(f"unknown corruption(s): {sorted(unknown)}")
    n = images.shape[0]
    out = images.copy()
    lo, hi = ops_per_sample
    counts = rng.integers(lo, hi + 1, size=n)
    for k in np.unique(counts):
        rows = np.flatnonzero(counts == k)
        # For each sample draw k distinct ops; group rows per op sequence slot.
        for slot in range(int(k)):
            chosen = rng.integers(0, len(names), size=rows.size)
            for op_idx in np.unique(chosen):
                grp = rows[chosen == op_idx]
                severity = float(rng.uniform(*severity_range))
                out[grp] = CORRUPTIONS[names[int(op_idx)]](out[grp], rng, severity)
    return np.clip(out, 0.0, 1.0)
