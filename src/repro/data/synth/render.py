"""Batched rasterization primitives for the synthetic datasets.

Everything here is vectorized over a *batch* of samples at once: a chunk
of N glyphs is rendered with O(edges) NumPy calls total, not O(N).  The
inner data layout keeps the pixel axis contiguous so the distance
reductions stream through cache (guide: contiguous access, vectorize).

Coordinate convention: the canvas is the unit square, ``x`` rightward,
``y`` downward; pixel centers sit at ``(i + 0.5) / side``.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

__all__ = [
    "pixel_grid",
    "sample_arc",
    "raster_polylines",
    "fill_polygons",
    "fill_ellipses",
    "random_affine",
    "apply_affine",
    "smooth",
]

DEFAULT_SIDE = 28


def pixel_grid(side: int = DEFAULT_SIDE) -> np.ndarray:
    """(side*side, 2) array of pixel-center coordinates in [0, 1]^2."""
    centers = (np.arange(side, dtype=np.float32) + 0.5) / side
    xx, yy = np.meshgrid(centers, centers)  # yy rows, xx cols
    return np.stack([xx.ravel(), yy.ravel()], axis=1)


def sample_arc(
    center: tuple[float, float],
    rx: float,
    ry: float,
    theta0: float,
    theta1: float,
    n: int = 20,
) -> np.ndarray:
    """Sample an elliptical arc into an (n, 2) polyline.

    Angles in degrees; theta=0 points right, positive angles rotate toward
    +y (downward on the canvas).
    """
    t = np.radians(np.linspace(theta0, theta1, n, dtype=np.float32))
    return np.stack(
        [center[0] + rx * np.cos(t), center[1] + ry * np.sin(t)], axis=1
    ).astype(np.float32)


def raster_polylines(
    polylines: list[np.ndarray],
    thickness: np.ndarray | float,
    side: int = DEFAULT_SIDE,
    softness: float = 0.35,
) -> np.ndarray:
    """Render a batch of stroke glyphs.

    Parameters
    ----------
    polylines:
        list of arrays, each shaped (N, P_i, 2): the same stroke across the
        batch (per-sample jittered control points).
    thickness:
        stroke half-width in canvas units; scalar or per-sample (N,).
    softness:
        edge softness as a fraction of the thickness (anti-aliasing).

    Returns
    -------
    (N, side, side) float32 intensities in [0, 1].
    """
    if not polylines:
        raise ValueError("need at least one polyline")
    n = polylines[0].shape[0]
    thickness = np.asarray(thickness, dtype=np.float32).reshape(-1, 1)
    if thickness.shape[0] not in (1, n):
        raise ValueError(f"thickness batch {thickness.shape[0]} incompatible with N={n}")

    centers = (np.arange(side, dtype=np.float32) + 0.5) / side
    gx_row = centers[None, None, :]  # (1, 1, side) — pixel-center x per column
    gy_col = centers[None, :, None]  # (1, side, 1) — pixel-center y per row
    # Track squared distance; one sqrt at the end.  Each segment only
    # matters inside its stroke envelope: a pixel farther than
    # ``thickness * (1 + softness)`` renders 0 whatever its exact
    # distance, so the per-segment work is clipped to the segment's
    # bounding box plus that cutoff (a few pixels around the ink instead
    # of the whole canvas).  Inside the box the arithmetic is unchanged,
    # so the rendered glyph is bit-identical to the full-grid sweep.
    cutoff = float(thickness.max()) * (1.0 + softness) + 2.0 / side
    min_d2 = np.full((n, side, side), np.inf, dtype=np.float32)
    for poly in polylines:
        if poly.shape[0] != n:
            raise ValueError("all polylines must share the batch dimension")
        if poly.shape[1] < 2:
            raise ValueError("polylines need at least 2 points")
        poly = poly.astype(np.float32, copy=False)
        px = poly[..., 0]
        py = poly[..., 1]
        # Per-segment bounding boxes over the whole batch, in pixel rows
        # and columns (pixel i spans canvas [i/side, (i+1)/side]).
        seg_x = np.stack([px[:, :-1], px[:, 1:]])  # (2, N, S)
        seg_y = np.stack([py[:, :-1], py[:, 1:]])
        c_lo = np.clip(
            np.floor((seg_x.min(axis=(0, 1)) - cutoff) * side).astype(np.int64), 0, side
        )
        c_hi = np.clip(
            np.ceil((seg_x.max(axis=(0, 1)) + cutoff) * side).astype(np.int64), 0, side
        )
        r_lo = np.clip(
            np.floor((seg_y.min(axis=(0, 1)) - cutoff) * side).astype(np.int64), 0, side
        )
        r_hi = np.clip(
            np.ceil((seg_y.max(axis=(0, 1)) + cutoff) * side).astype(np.int64), 0, side
        )
        for s in range(poly.shape[1] - 1):
            r0, r1, c0, c1 = r_lo[s], r_hi[s], c_lo[s], c_hi[s]
            if r0 >= r1 or c0 >= c1:
                continue
            ax = px[:, s][:, None, None]
            ay = py[:, s][:, None, None]
            abx = px[:, s + 1][:, None, None] - ax
            aby = py[:, s + 1][:, None, None] - ay
            ab_len2 = np.maximum(abx * abx + aby * aby, np.float32(1e-12))
            pax = gx_row[:, :, c0:c1] - ax  # (N, 1, C)
            pay = gy_col[:, r0:r1, :] - ay  # (N, R, 1)
            t = np.clip((pax * abx + pay * aby) / ab_len2, 0.0, 1.0)  # (N, R, C)
            dx = pax - t * abx
            dy = pay - t * aby
            window = min_d2[:, r0:r1, c0:c1]
            np.minimum(window, dx * dx + dy * dy, out=window)
    min_dist = np.sqrt(min_d2, out=min_d2).reshape(n, side * side)

    edge = np.maximum(thickness * softness, 1e-4)
    intensity = np.clip((thickness - min_dist) / edge + 1.0, 0.0, 1.0)
    return intensity.reshape(n, side, side).astype(np.float32)


def fill_polygons(vertices: np.ndarray, side: int = DEFAULT_SIDE) -> np.ndarray:
    """Even-odd-rule polygon fill for a batch of polygons.

    ``vertices``: (N, V, 2).  Returns boolean masks (N, side, side).
    Vectorized ray casting: the loop runs over the V edges, not pixels.
    """
    if vertices.ndim != 3 or vertices.shape[2] != 2:
        raise ValueError(f"vertices must be (N, V, 2), got {vertices.shape}")
    n, v, _ = vertices.shape
    grid = pixel_grid(side)
    px = grid[:, 0][None, :]  # (1, HW)
    py = grid[:, 1][None, :]
    inside = np.zeros((n, grid.shape[0]), dtype=bool)
    for i in range(v):
        x1 = vertices[:, i, 0][:, None]
        y1 = vertices[:, i, 1][:, None]
        x2 = vertices[:, (i + 1) % v, 0][:, None]
        y2 = vertices[:, (i + 1) % v, 1][:, None]
        crosses = (y1 > py) != (y2 > py)
        with np.errstate(divide="ignore", invalid="ignore"):
            x_at = x1 + (py - y1) * (x2 - x1) / (y2 - y1)
        inside ^= crosses & (px < x_at)
    return inside.reshape(n, side, side)


def fill_ellipses(params: np.ndarray, side: int = DEFAULT_SIDE) -> np.ndarray:
    """Filled (optionally rotated) ellipses.

    ``params``: (N, 5) columns = cx, cy, rx, ry, angle_degrees.
    Returns boolean masks (N, side, side).
    """
    if params.ndim != 2 or params.shape[1] != 5:
        raise ValueError(f"params must be (N, 5), got {params.shape}")
    grid = pixel_grid(side)
    cx, cy, rx, ry, ang = (params[:, i][:, None] for i in range(5))
    theta = np.radians(ang)
    dx = grid[None, :, 0] - cx
    dy = grid[None, :, 1] - cy
    # Rotate into the ellipse frame.
    ux = dx * np.cos(theta) + dy * np.sin(theta)
    uy = -dx * np.sin(theta) + dy * np.cos(theta)
    mask = (ux / np.maximum(rx, 1e-6)) ** 2 + (uy / np.maximum(ry, 1e-6)) ** 2 <= 1.0
    return mask.reshape(params.shape[0], side, side)


def random_affine(
    rng: np.random.Generator,
    n: int,
    max_rotate_deg: float = 8.0,
    scale_range: tuple[float, float] = (0.9, 1.1),
    max_translate: float = 0.04,
    max_shear: float = 0.08,
) -> np.ndarray:
    """Sample (N, 2, 3) affine matrices for per-sample glyph jitter.

    Transforms are applied about the canvas center so glyphs stay framed.
    """
    theta = np.radians(rng.uniform(-max_rotate_deg, max_rotate_deg, n))
    scale = rng.uniform(scale_range[0], scale_range[1], n)
    shear = rng.uniform(-max_shear, max_shear, n)
    tx = rng.uniform(-max_translate, max_translate, n)
    ty = rng.uniform(-max_translate, max_translate, n)

    cos_t, sin_t = np.cos(theta) * scale, np.sin(theta) * scale
    mats = np.zeros((n, 2, 3), dtype=np.float32)
    mats[:, 0, 0] = cos_t
    mats[:, 0, 1] = -sin_t + shear * cos_t
    mats[:, 1, 0] = sin_t
    mats[:, 1, 1] = cos_t + shear * sin_t
    # Recenter: p' = A (p - c) + c + t, folded into the translation column.
    cx = cy = 0.5
    mats[:, 0, 2] = cx - (mats[:, 0, 0] * cx + mats[:, 0, 1] * cy) + tx
    mats[:, 1, 2] = cy - (mats[:, 1, 0] * cx + mats[:, 1, 1] * cy) + ty
    return mats


def apply_affine(points: np.ndarray, mats: np.ndarray) -> np.ndarray:
    """Apply per-sample affines: points (N, P, 2) x mats (N, 2, 3) → (N, P, 2)."""
    if points.shape[0] != mats.shape[0]:
        raise ValueError(
            f"batch mismatch: points N={points.shape[0]}, mats N={mats.shape[0]}"
        )
    rotated = np.einsum("nij,npj->npi", mats[:, :, :2], points)
    return (rotated + mats[:, None, :, 2]).astype(np.float32)


def smooth(images: np.ndarray, sigma: float) -> np.ndarray:
    """Gaussian blur over the spatial axes of an (N, H, W) batch."""
    if sigma <= 0:
        return images.astype(np.float32)
    return ndimage.gaussian_filter(images, sigma=(0.0, sigma, sigma)).astype(np.float32)
