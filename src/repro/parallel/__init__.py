"""`repro.parallel` — process-level parallelism for experiments.

Dataset synthesis, threshold sweeps, and the scalability experiments are
embarrassingly parallel across configurations; this package fans them out
over a fork-based process pool (read-only NumPy arrays are shared with
workers for free via copy-on-write fork pages — no pickling of inputs).
"""

from repro.parallel.pool import parallel_map, ProcessPool, worker_count
from repro.parallel.batcher import chunk_slices, even_split, plan_batches
from repro.parallel.sweep import run_sweep, SweepResult

__all__ = [
    "parallel_map",
    "ProcessPool",
    "worker_count",
    "chunk_slices",
    "even_split",
    "plan_batches",
    "run_sweep",
    "SweepResult",
]
