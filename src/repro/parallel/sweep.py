"""Parallel parameter sweeps — the engine behind the scalability figures
and the ablation benches."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.parallel.pool import parallel_map

__all__ = ["SweepResult", "run_sweep"]


@dataclass(frozen=True)
class SweepResult:
    """One sweep point: the parameter value and what the run produced."""

    param: Any
    value: Any


def run_sweep(
    fn: Callable[[Any], Any],
    params: Sequence[Any],
    n_workers: int | None = None,
    parallel: bool = True,
) -> list[SweepResult]:
    """Evaluate ``fn`` at every parameter value, optionally in parallel.

    Results keep the order of ``params`` (ordered gather), so downstream
    plotting/tabulation never has to re-sort.
    """
    values = parallel_map(fn, list(params), n_workers=n_workers if parallel else 1)
    return [SweepResult(param=p, value=v) for p, v in zip(params, values)]
