"""Work partitioning helpers (chunking and balanced splits)."""

from __future__ import annotations

__all__ = ["chunk_slices", "even_split"]


def chunk_slices(n: int, chunk_size: int) -> list[slice]:
    """Slices covering range(n) in chunks of at most ``chunk_size``."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    return [slice(start, min(start + chunk_size, n)) for start in range(0, n, chunk_size)]


def even_split(n: int, k: int) -> list[slice]:
    """Split range(n) into ``k`` contiguous, maximally balanced slices.

    The first ``n % k`` slices get one extra element (MPI-style block
    distribution); empty slices are dropped when ``k > n``.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    base, extra = divmod(n, k)
    out: list[slice] = []
    start = 0
    for i in range(k):
        size = base + (1 if i < extra else 0)
        if size == 0:
            continue
        out.append(slice(start, start + size))
        start += size
    return out
