"""Work partitioning helpers (chunking, balanced splits, batch planning)."""

from __future__ import annotations

from typing import Sequence

__all__ = ["chunk_slices", "even_split", "plan_batches"]


def chunk_slices(n: int, chunk_size: int) -> list[slice]:
    """Slices covering range(n) in chunks of at most ``chunk_size``."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    return [slice(start, min(start + chunk_size, n)) for start in range(0, n, chunk_size)]


def even_split(n: int, k: int) -> list[slice]:
    """Split range(n) into ``k`` contiguous, maximally balanced slices.

    The first ``n % k`` slices get one extra element (MPI-style block
    distribution); empty slices are dropped when ``k > n``.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    base, extra = divmod(n, k)
    out: list[slice] = []
    start = 0
    for i in range(k):
        size = base + (1 if i < extra else 0)
        if size == 0:
            continue
        out.append(slice(start, start + size))
        start += size
    return out


def plan_batches(
    arrival_s: Sequence[float], max_batch_size: int, max_wait_s: float
) -> list[list[int]]:
    """Offline micro-batch plan for a sorted arrival-time trace.

    Groups request indices exactly as a size/deadline micro-batcher with
    an always-ready server would: a batch closes when it holds
    ``max_batch_size`` requests or when the next arrival lands at or
    after the moment the first member has waited ``max_wait_s``.  This is the pure,
    trace-level counterpart of :class:`repro.serving.batcher.MicroBatcher`
    (which runs the same policy online against a virtual clock) and the
    oracle its tests compare against.
    """
    if max_batch_size < 1:
        raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
    if max_wait_s < 0:
        raise ValueError(f"max_wait_s must be non-negative, got {max_wait_s}")
    batches: list[list[int]] = []
    current: list[int] = []
    deadline = float("inf")
    for i, t in enumerate(arrival_s):
        if current and t >= deadline:
            batches.append(current)
            current = []
        if not current:
            deadline = float(t) + max_wait_s
        current.append(i)
        if len(current) >= max_batch_size:
            batches.append(current)
            current = []
    if current:
        batches.append(current)
    return batches
