"""Fork-based process pool with ordered results and graceful fallback.

Design notes (guide: mpi4py patterns — scatter work, gather results):

* ``fork`` start method shares the parent's NumPy arrays copy-on-write,
  so workers read large datasets without serialization cost.
* Results come back pickled through a ``multiprocessing.Pool``; they are
  small (metrics dataclasses), so the gather cost is negligible.
* For one item — or when the platform forbids fork — the map degrades to
  the serial path, which keeps unit tests hermetic and deterministic.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["worker_count", "parallel_map", "ProcessPool"]

_FORK_AVAILABLE = "fork" in mp.get_all_start_methods()


def worker_count(requested: int | None = None, n_items: int | None = None) -> int:
    """Resolve the worker count: explicit request, else CPU count, capped
    by the number of work items (idle workers are pure overhead)."""
    if requested is not None:
        if requested < 1:
            raise ValueError(f"worker count must be >= 1, got {requested}")
        n = requested
    else:
        n = os.cpu_count() or 1
        env = os.environ.get("REPRO_MAX_WORKERS")
        if env:
            n = min(n, max(1, int(env)))
    if n_items is not None:
        n = min(n, max(1, n_items))
    return n


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    n_workers: int | None = None,
    chunksize: int = 1,
) -> list[R]:
    """Ordered parallel map over ``items``.

    Falls back to a serial loop when only one worker is warranted or fork
    is unavailable.  ``fn`` and each item must be picklable in the
    parallel path (configs and seeds are; raw arrays should be shared via
    fork, i.e. captured in ``fn``'s closure *before* the pool starts).
    """
    items = list(items)
    n = worker_count(n_workers, len(items))
    if n <= 1 or not _FORK_AVAILABLE or len(items) <= 1:
        return [fn(item) for item in items]
    ctx = mp.get_context("fork")
    with ctx.Pool(processes=n) as pool:
        return pool.map(fn, items, chunksize=max(1, chunksize))


class ProcessPool:
    """Reusable pool wrapper for several maps over the same worker set."""

    def __init__(self, n_workers: int | None = None) -> None:
        self.n_workers = worker_count(n_workers)
        self._pool = None

    def __enter__(self) -> "ProcessPool":
        if self.n_workers > 1 and _FORK_AVAILABLE:
            self._pool = mp.get_context("fork").Pool(processes=self.n_workers)
        return self

    def __exit__(self, *exc) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def map(self, fn: Callable[[T], R], items: Iterable[T], chunksize: int = 1) -> list[R]:
        items = list(items)
        if self._pool is None or len(items) <= 1:
            return [fn(item) for item in items]
        return self._pool.map(fn, items, chunksize=max(1, chunksize))
