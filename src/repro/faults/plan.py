"""Fault taxonomy: typed injections on the virtual clock.

:class:`~repro.cluster.failures.FailureEvent` covers the clean
crash/recover pair; real serving stacks mostly degrade through messier
modes.  A :class:`Fault` sets one replica's *fault state* at a point in
virtual time:

* ``slowdown`` — the replica's service times are multiplied by
  ``magnitude`` (a straggler / gray failure; ``magnitude=1.0``
  restores nominal speed);
* ``partition`` / ``heal`` — the balancer↔replica link blackholes:
  the replica keeps computing, but its *responses* are withheld until
  the partition heals (the balancer cannot tell it apart from a slow
  replica except through timeouts — exactly the gray-failure shape
  circuit breakers exist for);
* ``flaky`` — every batch dispatched to the replica fails with
  probability ``magnitude`` (sampled from the plan's dedicated seeded
  stream; ``magnitude=0.0`` restores health).  Clients observe the
  failure at the batch's completion time, as they would a 500.

A :class:`FaultPlan` bundles faults with classic crash/recover
:class:`FailureEvent` s into one deterministically-ordered storm
(explicit kind ranks break same-timestamp ties — nothing depends on
string ordering), plus the window helpers and the seeded
:func:`fault_storm` generator the chaos harness replays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.utils.rng import as_generator

if TYPE_CHECKING:  # imported lazily at runtime: cluster.engine imports us
    from repro.cluster.failures import FailureEvent

__all__ = [
    "SLOWDOWN",
    "PARTITION",
    "HEAL",
    "FLAKY",
    "Fault",
    "FaultPlan",
    "slowdown_window",
    "partition_window",
    "flaky_window",
    "fault_storm",
    "validate_windows",
]


def validate_windows(
    windows, what: str = "outage", owner: str = ""
) -> tuple[tuple[float, float], ...]:
    """Validate declared ``(start_s, end_s)`` windows; return them normalized.

    The one validator every layer that declares time windows shares —
    :class:`~repro.hw.network.NetworkLink` outages, the
    :mod:`repro.netsim` link fault plans — so "sorted, disjoint,
    end > start" means the same thing (and raises the same
    ``ValueError``) everywhere.  ``owner`` prefixes messages with the
    declaring object's name; ``what`` names the window kind.
    """
    prefix = f"{owner}: " if owner else ""
    normalized: list[tuple[float, float]] = []
    last_end = -float("inf")
    for start, end in windows:
        start, end = float(start), float(end)
        if end <= start:
            raise ValueError(
                f"{prefix}{what} window ({start}, {end}) must have end > start"
            )
        if start < last_end:
            raise ValueError(
                f"{prefix}{what} windows must be sorted and non-overlapping"
            )
        last_end = end
        normalized.append((start, end))
    return tuple(normalized)

SLOWDOWN = "slowdown"
PARTITION = "partition"
HEAL = "heal"
FLAKY = "flaky"

#: Same-timestamp processing order, made explicit so event ordering never
#: depends on how the kind strings happen to sort: at one instant a
#: partition heals before a new partition starts, slowdown/flaky state
#: changes apply next, and a fresh partition cuts the link last.
KIND_RANK = {HEAL: 0, SLOWDOWN: 1, FLAKY: 2, PARTITION: 3}


@dataclass(frozen=True)
class Fault:
    """One typed fault-state change: ``kind`` hits ``replica_id`` at ``time_s``.

    ``magnitude`` is the service-time multiplier for ``slowdown``
    (>= 1 degrades, 1.0 restores) and the per-batch failure probability
    for ``flaky`` (0.0 restores); ``partition``/``heal`` ignore it.
    """

    time_s: float
    replica_id: int
    kind: str
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError(f"fault time must be >= 0, got {self.time_s}")
        if self.replica_id < 0:
            raise ValueError(f"replica_id must be >= 0, got {self.replica_id}")
        if self.kind not in KIND_RANK:
            raise ValueError(
                f"kind must be one of {tuple(KIND_RANK)}, got {self.kind!r}"
            )
        if self.kind == SLOWDOWN and self.magnitude < 1.0:
            raise ValueError(
                f"slowdown magnitude is a service multiplier >= 1, got {self.magnitude}"
            )
        if self.kind == FLAKY and not 0.0 <= self.magnitude < 1.0:
            raise ValueError(
                f"flaky magnitude is a failure probability in [0, 1), got {self.magnitude}"
            )

    def sort_key(self) -> tuple[float, int, int]:
        """Deterministic ordering: time, then replica, then explicit rank."""
        return (self.time_s, self.replica_id, KIND_RANK[self.kind])

    def __lt__(self, other: "Fault") -> bool:
        return self.sort_key() < other.sort_key()


def slowdown_window(
    replica_id: int, at_s: float, duration_s: float, factor: float
) -> tuple[Fault, Fault]:
    """A straggler window: ``factor``× service from ``at_s``, healed after."""
    if duration_s <= 0:
        raise ValueError(f"slowdown duration must be positive, got {duration_s}")
    return (
        Fault(at_s, replica_id, SLOWDOWN, factor),
        Fault(at_s + duration_s, replica_id, SLOWDOWN, 1.0),
    )


def partition_window(
    replica_id: int, at_s: float, duration_s: float
) -> tuple[Fault, Fault]:
    """A link blackhole from ``at_s``, healing ``duration_s`` later."""
    if duration_s <= 0:
        raise ValueError(f"partition duration must be positive, got {duration_s}")
    return (
        Fault(at_s, replica_id, PARTITION),
        Fault(at_s + duration_s, replica_id, HEAL),
    )


def flaky_window(
    replica_id: int, at_s: float, duration_s: float, p_fail: float
) -> tuple[Fault, Fault]:
    """Elevated per-batch failure probability over one window."""
    if duration_s <= 0:
        raise ValueError(f"flaky duration must be positive, got {duration_s}")
    return (
        Fault(at_s, replica_id, FLAKY, p_fail),
        Fault(at_s + duration_s, replica_id, FLAKY, 0.0),
    )


@dataclass(frozen=True)
class FaultPlan:
    """One seeded, replayable fault storm.

    ``faults`` are the typed state changes above; ``failures`` are
    classic crash/recover events (both optional, both sorted with
    explicit tie ranks at construction).  ``seed`` feeds the *dedicated*
    RNG the cluster engine samples flaky batch failures and retry
    jitter from — independent of the balancer's stream, so adding a
    fault plan never perturbs policy decisions, and identical in oracle
    and ``--live`` modes.
    """

    faults: tuple[Fault, ...] = ()
    failures: tuple["FailureEvent", ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(sorted(self.faults)))
        object.__setattr__(self, "failures", tuple(sorted(self.failures)))

    def __bool__(self) -> bool:
        return bool(self.faults or self.failures)

    def max_replica_id(self) -> int:
        """Largest replica id any event targets (-1 for an empty plan)."""
        ids = [f.replica_id for f in self.faults]
        ids += [e.replica_id for e in self.failures]
        return max(ids) if ids else -1

    def partition_intervals(self) -> dict[int, list[tuple[float, float]]]:
        """Per-replica blackhole windows ``[(start, end), ...]``.

        Overlapping windows merge (a nesting counter pairs each
        ``partition`` with the ``heal`` that brings the count back to
        zero); an unhealed partition extends to infinity.  The engine
        uses these *static* intervals to defer response completions past
        the heal, which is why partitions are declared in the plan
        rather than mutated mid-run.
        """
        intervals: dict[int, list[tuple[float, float]]] = {}
        depth: dict[int, int] = {}
        open_at: dict[int, float] = {}
        for f in self.faults:
            if f.kind == PARTITION:
                if depth.get(f.replica_id, 0) == 0:
                    open_at[f.replica_id] = f.time_s
                depth[f.replica_id] = depth.get(f.replica_id, 0) + 1
            elif f.kind == HEAL and depth.get(f.replica_id, 0) > 0:
                depth[f.replica_id] -= 1
                if depth[f.replica_id] == 0:
                    intervals.setdefault(f.replica_id, []).append(
                        (open_at.pop(f.replica_id), f.time_s)
                    )
        for replica_id, start in open_at.items():
            intervals.setdefault(replica_id, []).append((start, float("inf")))
        for spans in intervals.values():
            spans.sort()
        return intervals


@dataclass(frozen=True)
class _StormShape:
    """Intensity knobs for :func:`fault_storm` (internal)."""

    slowdown_rate_hz: float
    partition_rate_hz: float
    flaky_rate_hz: float
    crash_mtbf_s: float = field(default=0.0)
    crash_mttr_s: float = field(default=0.0)


def fault_storm(
    n_replicas: int,
    horizon_s: float,
    rng=None,
    mean_window_s: float | None = None,
    slowdown_factor: tuple[float, float] = (4.0, 16.0),
    flaky_p: tuple[float, float] = (0.2, 0.7),
    windows_per_replica: float = 1.5,
    crash_mtbf_s: float | None = None,
    crash_mttr_s: float | None = None,
) -> FaultPlan:
    """Sample one randomized mixed fault storm (seed-deterministic).

    Each replica independently draws ~``windows_per_replica`` fault
    windows uniformly over ``[0, horizon_s)``; each window is a
    slowdown, partition, or flaky episode with equal probability, with
    magnitudes drawn from the given ranges and durations exponential
    around ``mean_window_s`` (default: an eighth of the horizon).
    Optional ``crash_mtbf_s``/``crash_mttr_s`` additionally overlay the
    classic :func:`~repro.cluster.failures.poisson_failures` renewal
    crashes.  The plan's ``seed`` is derived from the same stream, so
    one integer seed reproduces the storm *and* its in-run sampling.
    """
    if n_replicas <= 0:
        raise ValueError(f"n_replicas must be positive, got {n_replicas}")
    if horizon_s <= 0:
        raise ValueError(f"horizon_s must be positive, got {horizon_s}")
    rng = as_generator(rng)
    mean_window_s = horizon_s / 8.0 if mean_window_s is None else float(mean_window_s)
    faults: list[Fault] = []
    for replica_id in range(n_replicas):
        n_windows = int(rng.poisson(windows_per_replica))
        for _ in range(n_windows):
            at = float(rng.uniform(0.0, horizon_s))
            duration = min(
                max(1e-6, float(rng.exponential(mean_window_s))), horizon_s - at + 1e-6
            )
            kind = ("slowdown", "partition", "flaky")[int(rng.integers(3))]
            if kind == "slowdown":
                factor = float(rng.uniform(*slowdown_factor))
                faults.extend(slowdown_window(replica_id, at, duration, factor))
            elif kind == "partition":
                faults.extend(partition_window(replica_id, at, duration))
            else:
                p = float(rng.uniform(*flaky_p))
                faults.extend(flaky_window(replica_id, at, duration, p))
    failures: tuple["FailureEvent", ...] = ()
    if crash_mtbf_s is not None and crash_mttr_s is not None:
        from repro.cluster.failures import poisson_failures

        failures = poisson_failures(
            n_replicas, horizon_s, crash_mtbf_s, crash_mttr_s, rng=rng
        )
    seed = int(rng.integers(2**31 - 1))
    return FaultPlan(faults=tuple(faults), failures=failures, seed=seed)
