"""`repro.faults` — fault models and resilience mechanisms for serving.

The layer that makes *degraded-mode operation* a first-class, tested
scenario class.  Two halves:

* **Fault taxonomy** (:mod:`repro.faults.plan`) — typed injections on
  the virtual clock beyond crash/recover: ``slowdown`` (a replica turns
  into a straggler), ``partition``/``heal`` (a link blackholes
  responses), and ``flaky`` (elevated per-batch failure probability).
  A :class:`FaultPlan` bundles them with classic
  :class:`~repro.cluster.failures.FailureEvent` crashes into one
  seeded, deterministically-ordered storm that replays identically in
  oracle and ``--live`` modes.
* **Resilience mechanisms** — what a production stack does about it:
  per-request timeouts with jittered exponential-backoff retries under
  an explicit budget (:mod:`repro.faults.retry`), hedged dispatch
  (speculative second replica, first response wins), per-replica
  circuit breakers fed by rolling error/latency windows
  (:mod:`repro.faults.breaker`), and a degradation controller that
  walks the full → early-exit → shed ladder under sustained breaker
  pressure (:mod:`repro.faults.degrade`) — all bundled into a
  :class:`ResilienceConfig` consumed by
  :class:`repro.cluster.Cluster(resilience=...)`.

Quick tour::

    from repro.cluster import Cluster
    from repro.faults import FaultPlan, ResilienceConfig, fault_storm

    plan = fault_storm(n_replicas=4, horizon_s=2.0, rng=0)
    cluster = Cluster(backends, policy="power-of-two", faults=plan,
                      resilience=ResilienceConfig(timeout_s=0.08))
    report = cluster.serve(images, arrival_s)
    print(report.n_timed_out, report.n_hedged, report.availability)
"""

from repro.faults.breaker import BreakerConfig, CircuitBreaker
from repro.faults.degrade import (
    MODE_DEGRADE,
    MODE_FULL,
    MODE_SHED,
    DegradationConfig,
    DegradationController,
)
from repro.faults.plan import (
    FLAKY,
    HEAL,
    PARTITION,
    SLOWDOWN,
    Fault,
    FaultPlan,
    fault_storm,
    flaky_window,
    partition_window,
    slowdown_window,
)
from repro.faults.resilience import ResilienceConfig, hedge_delay_for
from repro.faults.retry import RetryPolicy

__all__ = [
    "Fault",
    "FaultPlan",
    "SLOWDOWN",
    "PARTITION",
    "HEAL",
    "FLAKY",
    "slowdown_window",
    "partition_window",
    "flaky_window",
    "fault_storm",
    "RetryPolicy",
    "CircuitBreaker",
    "BreakerConfig",
    "DegradationController",
    "DegradationConfig",
    "MODE_FULL",
    "MODE_DEGRADE",
    "MODE_SHED",
    "ResilienceConfig",
    "hedge_delay_for",
]
