"""Bundled resilience configuration for the cluster engine.

:class:`ResilienceConfig` is the single knob object
:class:`repro.cluster.Cluster` accepts (``resilience=...``): a
per-request timeout, a :class:`~repro.faults.retry.RetryPolicy`, an
optional hedge delay, per-replica
:class:`~repro.faults.breaker.BreakerConfig`, and an optional
:class:`~repro.faults.degrade.DegradationConfig`.  Passing ``None``
keeps the engine's historical naive behaviour bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.breaker import BreakerConfig
from repro.faults.degrade import DegradationConfig
from repro.faults.retry import RetryPolicy

__all__ = ["ResilienceConfig", "hedge_delay_for"]


@dataclass(frozen=True)
class ResilienceConfig:
    """What the cluster does about faults.

    ``timeout_s`` arms a per-attempt timer at dispatch; a fire marks the
    attempt failed, feeds the replica's breaker, and (budget permitting)
    schedules a backed-off retry.  ``hedge_delay_s``, when set, arms a
    speculative second dispatch that races the first — first response
    wins, the loser is cancelled and can never overwrite the winner.
    ``breaker`` configures per-replica ejection; ``degradation``
    (optional) walks the full → early-exit → shed ladder under
    sustained breaker pressure.
    """

    timeout_s: float = 0.1
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    hedge_delay_s: float | None = None
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    degradation: DegradationConfig | None = None

    def __post_init__(self) -> None:
        if self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")
        if self.hedge_delay_s is not None and self.hedge_delay_s <= 0:
            raise ValueError(
                f"hedge_delay_s must be positive, got {self.hedge_delay_s}"
            )
        if self.hedge_delay_s is not None and self.hedge_delay_s >= self.timeout_s:
            raise ValueError(
                f"hedge_delay_s ({self.hedge_delay_s}) must be < "
                f"timeout_s ({self.timeout_s}): a hedge that arms after "
                "the timeout can never win"
            )


def hedge_delay_for(
    backends, max_batch_size: int, max_wait_s: float, factor: float = 1.5
) -> float:
    """A p95-flavoured hedge delay from the fleet's own service model.

    The slowest healthy replica's worst-case batch (full, all-hard)
    plus the batcher's wait cap bounds how long a *healthy* response
    can take; hedging at ``factor`` times that only fires on genuine
    stragglers.  Deterministic — derived from the backends' timing
    model, not from sampled latencies — so oracle and live runs hedge
    at the same instants.
    """
    if not backends:
        raise ValueError("backends must be non-empty")
    if factor <= 0:
        raise ValueError(f"factor must be positive, got {factor}")
    worst = max(
        b.batch_service_s(max_batch_size, max_batch_size) for b in backends
    )
    return factor * (max_wait_s + worst)
