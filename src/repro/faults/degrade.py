"""Graceful-degradation ladder driven by breaker pressure.

The paper's early-exit models give the serving stack a natural middle
rung between "full quality" and "shed the request": answer from the
early exit.  The :class:`DegradationController` walks that ladder
cluster-wide based on how much of the fleet the circuit breakers have
ejected:

* ``full`` — normal routing, model picks its own exit;
* ``degrade`` — new requests are forced onto the early-exit route
  (logged via the existing ``degraded`` column);
* ``shed`` — new requests are rejected outright.

Transitions require the pressure signal to hold for ``dwell_s`` of
virtual time, so a single breaker blip doesn't thrash the fleet through
quality modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.logging import get_logger

__all__ = [
    "MODE_FULL",
    "MODE_DEGRADE",
    "MODE_SHED",
    "DegradationConfig",
    "DegradationController",
]

MODE_FULL = "full"
MODE_DEGRADE = "degrade"
MODE_SHED = "shed"

logger = get_logger("faults.degrade")

_LADDER = (MODE_FULL, MODE_DEGRADE, MODE_SHED)


@dataclass(frozen=True)
class DegradationConfig:
    """Thresholds for walking the full → degrade → shed ladder.

    ``degrade_pressure``/``shed_pressure`` are fractions of the fleet
    with open (or half-open) breakers; the controller steps *down* the
    ladder when pressure sits above the next rung's threshold for
    ``dwell_s``, and steps back *up* when it sits below the current
    rung's threshold for the same dwell.
    """

    degrade_pressure: float = 0.25
    shed_pressure: float = 0.5
    dwell_s: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 < self.degrade_pressure <= 1.0:
            raise ValueError(
                f"degrade_pressure must be in (0, 1], got {self.degrade_pressure}"
            )
        if self.shed_pressure < self.degrade_pressure:
            raise ValueError(
                f"shed_pressure ({self.shed_pressure}) must be >= "
                f"degrade_pressure ({self.degrade_pressure})"
            )
        if self.dwell_s < 0:
            raise ValueError(f"dwell_s must be >= 0, got {self.dwell_s}")


@dataclass
class DegradationController:
    """Dwell-filtered mode ladder; ``update()`` then read ``mode``."""

    config: DegradationConfig = field(default_factory=DegradationConfig)
    mode: str = MODE_FULL
    n_transitions: int = 0
    _pending: str | None = field(default=None, repr=False)
    _pending_since_s: float = 0.0

    def _target(self, open_frac: float) -> str:
        if open_frac >= self.config.shed_pressure:
            return MODE_SHED
        if open_frac >= self.config.degrade_pressure:
            return MODE_DEGRADE
        return MODE_FULL

    def update(self, now: float, open_frac: float) -> str:
        """Feed the current breaker pressure; returns the active mode.

        ``open_frac`` is the fraction of replicas whose breakers are not
        closed.  A mode change only commits after the target mode has
        been continuously indicated for ``dwell_s`` of virtual time.
        """
        if not 0.0 <= open_frac <= 1.0:
            raise ValueError(f"open_frac must be in [0, 1], got {open_frac}")
        target = self._target(open_frac)
        if target == self.mode:
            self._pending = None
            return self.mode
        if target != self._pending:
            self._pending = target
            self._pending_since_s = now
        if now - self._pending_since_s >= self.config.dwell_s:
            # Walk one rung at a time so full -> shed always passes
            # through degrade (observable in per-mode counters).
            cur = _LADDER.index(self.mode)
            dst = _LADDER.index(target)
            cur += 1 if dst > cur else -1
            previous = self.mode
            self.mode = _LADDER[cur]
            self.n_transitions += 1
            logger.debug(
                "degradation mode %s -> %s at t=%.6fs (breaker pressure %.2f)",
                previous, self.mode, now, open_frac,
            )
            self._pending_since_s = now
            if self.mode == target:
                self._pending = None
        return self.mode
