"""Per-replica circuit breakers over rolling error/latency windows.

A :class:`CircuitBreaker` watches one replica's recent outcomes (batch
completions and timeout fires) and walks the classic three-state
machine:

* **closed** — traffic flows; outcomes accumulate in a rolling window.
* **open** — too many failures (or too-slow successes): the replica is
  ejected from balancing for ``cooldown_s``.
* **half-open** — after cooldown a limited number of *probe* requests
  are admitted; all-successful probes close the breaker, any failure
  re-opens it.

Breakers observe only what a client could: response outcomes and their
latencies.  A partitioned replica looks identical to a slow one — the
timeout fires are what feed the breaker, which is exactly the
gray-failure behaviour the chaos harness pins down (safety: unhealthy
replicas get ejected; liveness: healthy ones are eventually re-admitted).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

__all__ = ["BreakerConfig", "CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning knobs for one :class:`CircuitBreaker`.

    The breaker trips when, over the trailing ``window_s`` (with at
    least ``min_samples`` outcomes), either the error fraction exceeds
    ``error_threshold`` or — when ``latency_threshold_s`` is set — the
    mean success latency exceeds it.  It then ejects for ``cooldown_s``
    and re-admits via ``half_open_probes`` trial requests.
    """

    window_s: float = 0.5
    min_samples: int = 8
    error_threshold: float = 0.5
    latency_threshold_s: float | None = None
    cooldown_s: float = 0.25
    half_open_probes: int = 2

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ValueError(f"window_s must be positive, got {self.window_s}")
        if self.min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {self.min_samples}")
        if not 0.0 < self.error_threshold <= 1.0:
            raise ValueError(
                f"error_threshold must be in (0, 1], got {self.error_threshold}"
            )
        if self.latency_threshold_s is not None and self.latency_threshold_s <= 0:
            raise ValueError(
                f"latency_threshold_s must be positive, got {self.latency_threshold_s}"
            )
        if self.cooldown_s <= 0:
            raise ValueError(f"cooldown_s must be positive, got {self.cooldown_s}")
        if self.half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, got {self.half_open_probes}"
            )


@dataclass
class CircuitBreaker:
    """Rolling-window breaker for one replica (virtual-clock driven)."""

    config: BreakerConfig = field(default_factory=BreakerConfig)
    state: str = CLOSED
    opened_at_s: float = float("-inf")
    n_trips: int = 0
    _window: deque = field(default_factory=deque, repr=False)
    _probes_out: int = 0
    _probes_ok: int = 0

    def _evict(self, now: float) -> None:
        horizon = now - self.config.window_s
        while self._window and self._window[0][0] < horizon:
            self._window.popleft()

    def record(self, now: float, ok: bool, latency_s: float = 0.0) -> None:
        """Feed one outcome (a batch completion or a timeout fire).

        In half-open state outcomes are interpreted as probe results:
        any failure re-opens immediately; ``half_open_probes``
        consecutive successes close the breaker and reset the window.
        """
        if self.state == HALF_OPEN:
            self._probes_out = max(0, self._probes_out - 1)
            if not ok:
                self._trip(now)
            else:
                self._probes_ok += 1
                if self._probes_ok >= self.config.half_open_probes:
                    self.state = CLOSED
                    self._window.clear()
                    self._probes_out = 0
                    self._probes_ok = 0
            return
        self._window.append((now, ok, latency_s))
        self._evict(now)
        if self.state == CLOSED and self._should_trip():
            self._trip(now)

    def _should_trip(self) -> bool:
        if len(self._window) < self.config.min_samples:
            return False
        n_err = sum(1 for _, ok, _ in self._window if not ok)
        if n_err / len(self._window) > self.config.error_threshold:
            return True
        if self.config.latency_threshold_s is not None:
            lats = [lat for _, ok, lat in self._window if ok]
            if lats and sum(lats) / len(lats) > self.config.latency_threshold_s:
                return True
        return False

    def _trip(self, now: float) -> None:
        self.state = OPEN
        self.opened_at_s = now
        self.n_trips += 1
        self._probes_out = 0
        self._probes_ok = 0

    def available(self, now: float) -> bool:
        """Whether the balancer may route to this replica right now.

        Open breakers transition to half-open once ``cooldown_s`` has
        elapsed, then admit at most ``half_open_probes`` outstanding
        probes until their outcomes arrive.  Checking availability does
        not consume a probe slot — the balancer calls
        :meth:`note_probe` only on the replica it actually picks.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now - self.opened_at_s >= self.config.cooldown_s:
                self.state = HALF_OPEN
                self._probes_out = 0
                self._probes_ok = 0
            else:
                return False
        return self._probes_out + self._probes_ok < self.config.half_open_probes

    def note_probe(self) -> None:
        """Mark one half-open probe as dispatched (chosen replica only)."""
        if self.state == HALF_OPEN:
            self._probes_out += 1

    def void_probe(self) -> None:
        """Release a probe slot whose attempt was cancelled, not answered.

        A probe request can die without an outcome — its copy dropped at
        a flush boundary after a timeout, or its batch's response losing
        the race to a hedge twin.  The slot must be returned or the
        breaker wedges half-open forever, blocked on a response that can
        no longer arrive.  Clamped at zero: over-releasing (an attempt
        that got both a timeout record and a cancelled-copy void) can at
        worst admit one extra probe, never deadlock.
        """
        if self.state == HALF_OPEN:
            self._probes_out = max(0, self._probes_out - 1)

    def allow(self, now: float) -> bool:
        """:meth:`available` + :meth:`note_probe` in one call."""
        if not self.available(now):
            return False
        self.note_probe()
        return True
