"""Jittered exponential-backoff retry budgets.

A :class:`RetryPolicy` is the client-side half of timeout handling: when
a request's attempt times out (or its batch fails), the engine consults
the policy for whether another attempt is allowed and how long to back
off first.  Delays are *deterministic given the uniform draw* passed in
— the engine feeds draws from the fault plan's dedicated seeded stream,
which is what keeps retry timing identical between oracle and ``--live``
runs.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with jittered exponential backoff.

    ``max_retries`` is the explicit budget of *re*-attempts per request
    (0 disables retries; the first attempt is always free).  Attempt
    ``k`` (1-based) backs off ``base_backoff_s * backoff_mult**(k-1)``,
    capped at ``max_backoff_s``, then jittered uniformly within
    ``±jitter_frac`` of itself so synchronized timeout storms decorrelate.
    """

    max_retries: int = 2
    base_backoff_s: float = 0.005
    backoff_mult: float = 2.0
    max_backoff_s: float = 0.25
    jitter_frac: float = 0.25

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_backoff_s < 0:
            raise ValueError(
                f"base_backoff_s must be >= 0, got {self.base_backoff_s}"
            )
        if self.backoff_mult < 1.0:
            raise ValueError(f"backoff_mult must be >= 1, got {self.backoff_mult}")
        if self.max_backoff_s < self.base_backoff_s:
            raise ValueError(
                f"max_backoff_s ({self.max_backoff_s}) must be >= "
                f"base_backoff_s ({self.base_backoff_s})"
            )
        if not 0.0 <= self.jitter_frac <= 1.0:
            raise ValueError(
                f"jitter_frac must be in [0, 1], got {self.jitter_frac}"
            )

    def allows(self, retries_so_far: int) -> bool:
        """Whether another retry fits in the budget."""
        return retries_so_far < self.max_retries

    def delay_s(self, attempt: int, u: float) -> float:
        """Backoff before (1-based) retry ``attempt``, jittered by draw ``u``.

        ``u`` is a uniform [0, 1) sample supplied by the caller; the
        same draw always yields the same delay, so a seeded stream
        makes the whole retry schedule replayable.
        """
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        base = self.base_backoff_s * self.backoff_mult ** (attempt - 1)
        base = min(base, self.max_backoff_s)
        jitter = 1.0 + self.jitter_frac * (2.0 * u - 1.0)
        return base * jitter
