"""ASCII chart rendering — the harness's stand-in for matplotlib.

Each paper figure is regenerated as (a) the numeric series, printed as a
table, and (b) a quick-look ASCII chart so trends are visible directly in
benchmark output.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Series", "ascii_line_chart", "ascii_bar_chart"]


@dataclass(frozen=True)
class Series:
    """One named line in a chart."""

    name: str
    x: tuple[float, ...]
    y: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(f"{self.name}: x has {len(self.x)} points, y has {len(self.y)}")


_MARKS = "ox+*#@%&"


def ascii_line_chart(
    series: list[Series],
    width: int = 64,
    height: int = 16,
    title: str = "",
    y_label: str = "",
) -> str:
    """Scatter/line chart over a character grid, one marker per series."""
    if not series:
        raise ValueError("need at least one series")
    all_x = np.concatenate([np.asarray(s.x, dtype=float) for s in series])
    all_y = np.concatenate([np.asarray(s.y, dtype=float) for s in series])
    x_lo, x_hi = float(all_x.min()), float(all_x.max())
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, s in enumerate(series):
        mark = _MARKS[si % len(_MARKS)]
        for xv, yv in zip(s.x, s.y):
            col = int(round((xv - x_lo) / x_span * (width - 1)))
            row = height - 1 - int(round((yv - y_lo) / y_span * (height - 1)))
            grid[row][col] = mark

    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:10.3g} ┐")
    for row in grid:
        lines.append(" " * 11 + "│" + "".join(row))
    lines.append(f"{y_lo:10.3g} └" + "─" * width)
    lines.append(" " * 12 + f"{x_lo:<10.3g}" + " " * max(0, width - 20) + f"{x_hi:>10.3g}")
    legend = "   ".join(
        f"{_MARKS[i % len(_MARKS)]} {s.name}" for i, s in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    if y_label:
        lines.append(" " * 12 + f"(y: {y_label})")
    return "\n".join(lines)


def ascii_bar_chart(
    labels: list[str],
    values: list[float],
    width: int = 50,
    title: str = "",
    unit: str = "",
) -> str:
    """Horizontal bar chart (used for the Fig. 5 model comparison)."""
    if len(labels) != len(values):
        raise ValueError(f"{len(labels)} labels but {len(values)} values")
    if not values:
        raise ValueError("need at least one bar")
    peak = max(abs(v) for v in values) or 1.0
    name_w = max(len(l) for l in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "█" * max(1, int(round(abs(value) / peak * width)))
        lines.append(f"{label.ljust(name_w)} │{bar} {value:.3g}{unit}")
    return "\n".join(lines)
