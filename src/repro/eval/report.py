"""Combined experiment report: collect every rendered table/figure into
one markdown document (the artifact a reviewer reads first)."""

from __future__ import annotations

from datetime import datetime, timezone
from pathlib import Path

__all__ = ["collect_report", "DEFAULT_SECTIONS"]

# Order mirrors the paper's evaluation section.
DEFAULT_SECTIONS: tuple[tuple[str, str], ...] = (
    ("table1", "Table I — converting autoencoder architectures"),
    ("fig3", "Fig. 3 — BranchyNet speedup vs hard-sample fraction"),
    ("table2", "Table II — latency / energy / accuracy"),
    ("fig5", "Fig. 5 — five-system comparison (MNIST, Pi 4)"),
    ("fig6_mnist", "Fig. 6 — scalability, MNIST"),
    ("fig7_fmnist", "Fig. 7 — scalability, FMNIST"),
    ("fig8_kmnist", "Fig. 8 — scalability, KMNIST"),
    ("ablation_bottleneck", "Ablation — AE bottleneck width"),
    ("ablation_activation", "Ablation — reconstruction head"),
    ("ablation_threshold", "Ablation — entropy threshold sweep"),
    ("ablation_hard_fraction", "Ablation — hard-fraction sweep"),
    ("future_work_variants", "Future work (§V) — generalized / encoder-only CBNet"),
    ("serving_tails", "Extension — tail latency under load"),
    ("serving_engine", "Extension — batched serving engine (repro.serving)"),
    ("fleet_cluster", "Extension — fleet-scale cluster serving (repro.cluster)"),
    ("tenants", "Extension — multi-tenant SLO classes, FIFO vs priority"),
    ("offload_split", "Extension — edge–cloud offloading (repro.offload)"),
)


def collect_report(
    results_dir: str | Path,
    output_path: str | Path | None = None,
    sections: tuple[tuple[str, str], ...] = DEFAULT_SECTIONS,
) -> str:
    """Assemble ``results_dir``'s rendered outputs into one markdown report.

    Missing sections are listed (with the command that generates them)
    rather than silently dropped, so a partial report is self-describing.
    """
    results_dir = Path(results_dir)
    stamp = datetime.now(timezone.utc).strftime("%Y-%m-%d %H:%MZ")
    lines = [
        "# CBNet reproduction — experiment report",
        "",
        f"Generated {stamp} from `{results_dir}`.",
        "Regenerate with `pytest benchmarks/ --benchmark-only`.",
        "",
    ]
    for slug, title in sections:
        lines.append(f"## {title}")
        lines.append("")
        path = results_dir / f"{slug}.txt"
        if path.exists():
            lines.append("```")
            lines.append(path.read_text().rstrip())
            lines.append("```")
        else:
            lines.append(
                f"*(missing — run `pytest benchmarks/ -k {slug.split('_')[0]}` "
                f"to generate `{path.name}`)*"
            )
        lines.append("")
    report = "\n".join(lines)
    if output_path is not None:
        Path(output_path).write_text(report)
    return report
