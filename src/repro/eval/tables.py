"""Plain-text table rendering for the benchmark harness output."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

__all__ = ["Table", "format_table"]


@dataclass
class Table:
    """A simple column-aligned text table."""

    headers: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    title: str = ""

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.headers):
            raise ValueError(f"row has {len(values)} cells, table has {len(self.headers)} columns")
        self.rows.append(list(values))

    def render(self) -> str:
        return format_table(self.headers, self.rows, title=self.title)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.1f}"
        if abs(value) >= 1:
            return f"{value:.3f}"
        return f"{value:.4f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> str:
    """Render rows under headers with column alignment and a rule line."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
