"""Classification and latency metrics."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "accuracy",
    "confusion_matrix",
    "per_class_accuracy",
    "speedup",
    "latency_percentiles",
    "LatencyStats",
]


def latency_percentiles(
    samples_s, qs: tuple[float, ...] = (50.0, 95.0, 99.0)
) -> tuple[float, ...]:
    """Latency percentiles of a sample, as plain floats.

    The one place the repo computes sojourn/latency percentiles: the
    M/D/1 simulation (:mod:`repro.hw.serving`), the serving engine
    (:mod:`repro.serving.engine`), the cluster report
    (:mod:`repro.cluster.engine`), and :class:`LatencyStats` all call
    this instead of repeating ``np.percentile`` triplets.

    Returns one float per entry of ``qs`` (default p50/p95/p99), so the
    common call site reads ``p50, p95, p99 = latency_percentiles(sojourn)``.
    """
    samples = np.asarray(samples_s, dtype=np.float64)
    if samples.size == 0:
        raise ValueError("need at least one latency sample")
    if not qs:
        raise ValueError("need at least one percentile")
    return tuple(float(v) for v in np.percentile(samples, qs))


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy in [0, 1]."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError(f"shape mismatch: {predictions.shape} vs {labels.shape}")
    if predictions.size == 0:
        raise ValueError("cannot compute accuracy of an empty prediction set")
    return float((predictions == labels).mean())


def confusion_matrix(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int | None = None
) -> np.ndarray:
    """(K, K) counts, rows = true class, columns = predicted class."""
    predictions = np.asarray(predictions, dtype=np.int64)
    labels = np.asarray(labels, dtype=np.int64)
    k = num_classes or int(max(predictions.max(initial=0), labels.max(initial=0))) + 1
    out = np.zeros((k, k), dtype=np.int64)
    np.add.at(out, (labels, predictions), 1)
    return out


def per_class_accuracy(predictions: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Accuracy per true class (NaN for classes absent from labels)."""
    cm = confusion_matrix(predictions, labels)
    totals = cm.sum(axis=1)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(totals > 0, np.diag(cm) / totals, np.nan)


def speedup(baseline_latency: float, model_latency: float) -> float:
    """How many times faster than the baseline (paper's "N.NNx" numbers)."""
    if model_latency <= 0:
        raise ValueError(f"model latency must be positive, got {model_latency}")
    return baseline_latency / model_latency


@dataclass(frozen=True)
class LatencyStats:
    """Summary of a latency sample (wall-clock benchmarking)."""

    mean: float
    p50: float
    p95: float
    minimum: float
    maximum: float
    n: int

    @classmethod
    def from_samples(cls, samples: np.ndarray) -> "LatencyStats":
        samples = np.asarray(samples, dtype=np.float64)
        p50, p95 = latency_percentiles(samples, (50.0, 95.0))
        return cls(
            mean=float(samples.mean()),
            p50=p50,
            p95=p95,
            minimum=float(samples.min()),
            maximum=float(samples.max()),
            n=int(samples.size),
        )
