"""The Table-II engine: evaluate LeNet / BranchyNet / CBNet on one
dataset across all simulated devices.

Accuracy and early-exit rates come from *running the real models* on the
synthetic test set; latency and energy come from the calibrated device
simulator at the measured operating point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.pipeline import PipelineArtifacts
from repro.eval.metrics import accuracy, speedup
from repro.hw.device import DeviceProfile
from repro.hw.devices import device_profiles
from repro.hw.energy import energy_joules, energy_savings_percent
from repro.hw.latency import branchynet_expected_latency, cbnet_latency, lenet_latency
from repro.models.lenet import LeNet

__all__ = ["ModelDeviceResult", "DatasetEvaluation", "evaluate_dataset"]


@dataclass(frozen=True)
class ModelDeviceResult:
    """One (dataset, model, device) cell of Table II."""

    dataset: str
    model: str
    device: str
    latency_ms: float
    energy_mj: float
    accuracy_pct: float
    energy_savings_vs_lenet_pct: float | None = None
    speedup_vs_lenet: float | None = None


@dataclass
class DatasetEvaluation:
    """All Table-II cells for one dataset, plus operating-point stats."""

    dataset: str
    early_exit_rate: float
    ae_latency_share: dict[str, float] = field(default_factory=dict)
    results: list[ModelDeviceResult] = field(default_factory=list)

    def cell(self, model: str, device: str) -> ModelDeviceResult:
        for r in self.results:
            if r.model == model and r.device == device:
                return r
        raise KeyError(f"no result for model={model!r} device={device!r}")

    def models(self) -> list[str]:
        seen: list[str] = []
        for r in self.results:
            if r.model not in seen:
                seen.append(r.model)
        return seen


def evaluate_dataset(
    artifacts: PipelineArtifacts,
    lenet: LeNet,
    devices: dict[str, DeviceProfile] | None = None,
) -> DatasetEvaluation:
    """Produce every Table-II cell for one dataset."""
    devices = devices or device_profiles()
    test = artifacts.datasets["test"]
    images, labels = test.images, test.labels
    name = artifacts.config.dataset

    # --- behavioural measurements (device-independent) ------------------ #
    lenet_acc = accuracy(lenet.predict(images), labels)
    branchy_res = artifacts.branchynet.infer(images)
    branchy_acc = accuracy(branchy_res.predictions, labels)
    exit_rate = branchy_res.early_exit_rate
    cbnet_acc = accuracy(artifacts.cbnet.predict(images), labels)

    evaluation = DatasetEvaluation(dataset=name, early_exit_rate=exit_rate)

    # --- simulated latency & energy per device --------------------------- #
    for dev_name, device in devices.items():
        t_lenet = lenet_latency(lenet, device)
        t_branchy = branchynet_expected_latency(
            artifacts.branchynet, device, exit_rate
        ).expected
        cb = cbnet_latency(artifacts.cbnet, device)
        evaluation.ae_latency_share[dev_name] = cb.autoencoder_share

        e_lenet = energy_joules(device, t_lenet)
        e_branchy = energy_joules(device, t_branchy)
        e_cbnet = energy_joules(device, cb.total)

        evaluation.results.extend(
            [
                ModelDeviceResult(
                    dataset=name,
                    model="lenet",
                    device=dev_name,
                    latency_ms=t_lenet * 1e3,
                    energy_mj=e_lenet * 1e3,
                    accuracy_pct=100 * lenet_acc,
                ),
                ModelDeviceResult(
                    dataset=name,
                    model="branchynet",
                    device=dev_name,
                    latency_ms=t_branchy * 1e3,
                    energy_mj=e_branchy * 1e3,
                    accuracy_pct=100 * branchy_acc,
                    energy_savings_vs_lenet_pct=energy_savings_percent(e_lenet, e_branchy),
                    speedup_vs_lenet=speedup(t_lenet, t_branchy),
                ),
                ModelDeviceResult(
                    dataset=name,
                    model="cbnet",
                    device=dev_name,
                    latency_ms=cb.total * 1e3,
                    energy_mj=e_cbnet * 1e3,
                    accuracy_pct=100 * cbnet_acc,
                    energy_savings_vs_lenet_pct=energy_savings_percent(e_lenet, e_cbnet),
                    speedup_vs_lenet=speedup(t_lenet, cb.total),
                ),
            ]
        )
    return evaluation
