"""`repro.eval` — metrics, table/figure rendering, experiment runner."""

from repro.eval.metrics import (
    accuracy,
    confusion_matrix,
    per_class_accuracy,
    speedup,
    latency_percentiles,
    LatencyStats,
)
from repro.eval.tables import Table, format_table
from repro.eval.figures import ascii_line_chart, ascii_bar_chart, Series
from repro.eval.runner import ModelDeviceResult, evaluate_dataset, DatasetEvaluation
from repro.eval.report import collect_report

__all__ = [
    "accuracy",
    "confusion_matrix",
    "per_class_accuracy",
    "speedup",
    "latency_percentiles",
    "LatencyStats",
    "Table",
    "format_table",
    "ascii_line_chart",
    "ascii_bar_chart",
    "Series",
    "ModelDeviceResult",
    "evaluate_dataset",
    "DatasetEvaluation",
    "collect_report",
]
