"""CBNet reproduction: converting autoencoder for low-latency,
energy-efficient DNN inference at the edge (Mahmud et al., IPDPS 2024).

Public API tour
---------------
>>> from repro import load_dataset, PipelineConfig, build_cbnet_pipeline
>>> data = load_dataset("fmnist", n_train=2000, n_test=500, seed=0)
>>> artifacts = build_cbnet_pipeline(PipelineConfig(dataset="fmnist", seed=0,
...                                                 n_train=2000, n_test=500))
>>> preds = artifacts.cbnet.predict(data["test"].images)

Sub-packages: :mod:`repro.nn` (NumPy DL framework), :mod:`repro.data`
(synthetic MNIST-family datasets), :mod:`repro.models` (LeNet /
BranchyNet / converting AE), :mod:`repro.core` (the CBNet pipeline),
:mod:`repro.baselines` (AdaDeep, SubFlow), :mod:`repro.hw` (device
latency/power simulation), :mod:`repro.serving` (batched inference
serving engine: micro-batching, LRU result cache, easy/hard routing),
:mod:`repro.cluster` (fleet-scale serving: load balancing, autoscaling,
admission control, failure injection), :mod:`repro.eval` +
:mod:`repro.experiments` (every table and figure of the paper).

See README.md for the quickstart and docs/architecture.md for the
layer diagram and data-flow narrative.
"""

from repro.core.cbnet import CBNet
from repro.core.config import PipelineConfig, TrainConfig
from repro.core.pipeline import build_cbnet_pipeline, train_baseline_lenet
from repro.data import load_dataset
from repro.models import BranchyLeNet, ConvertingAutoencoder, LeNet, LightweightClassifier

__version__ = "1.0.0"

__all__ = [
    "CBNet",
    "PipelineConfig",
    "TrainConfig",
    "build_cbnet_pipeline",
    "train_baseline_lenet",
    "load_dataset",
    "LeNet",
    "BranchyLeNet",
    "ConvertingAutoencoder",
    "LightweightClassifier",
    "__version__",
]
