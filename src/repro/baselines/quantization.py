"""Quantization machinery: k-means weight sharing and affine codes.

:func:`kmeans_quantize` is Deep Compression's weight sharing (Han et
al., 2016) — one of the techniques in AdaDeep's search space.
:func:`affine_quantize` is the standard scale/zero-point integer code;
it shares this module because the offload wire codecs
(:class:`repro.offload.policies.TensorCodec`) quantize *activation*
payloads with it, where an 8-byte header beats shipping a k-means
codebook per tensor."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.utils.rng import as_generator

__all__ = ["kmeans_quantize", "affine_quantize", "affine_dequantize", "quantize_model"]


def kmeans_quantize(
    weights: np.ndarray,
    bits: int,
    rng: np.random.Generator | int | None = None,
    iterations: int = 12,
) -> tuple[np.ndarray, np.ndarray]:
    """Cluster weights into 2^bits shared values (1-D Lloyd's algorithm).

    Returns (quantized weights, codebook).  Centroids initialize linearly
    over the weight range — the scheme Deep Compression found most robust.
    """
    if not 1 <= bits <= 16:
        raise ValueError(f"bits must be in [1, 16], got {bits}")
    rng = as_generator(rng)
    flat = weights.astype(np.float64).ravel()
    k = min(2**bits, flat.size)
    lo, hi = float(flat.min()), float(flat.max())
    if lo == hi:
        return weights.copy(), np.asarray([lo], dtype=np.float32)
    codebook = np.linspace(lo, hi, k)
    for _ in range(iterations):
        # Assign: nearest centroid via searchsorted on midpoints (O(n log k)).
        mids = (codebook[1:] + codebook[:-1]) / 2.0
        assign = np.searchsorted(mids, flat)
        # Update: mean of assigned weights; empty clusters keep their value.
        sums = np.bincount(assign, weights=flat, minlength=k)
        counts = np.bincount(assign, minlength=k)
        nonempty = counts > 0
        new_codebook = codebook.copy()
        new_codebook[nonempty] = sums[nonempty] / counts[nonempty]
        if np.allclose(new_codebook, codebook):
            codebook = new_codebook
            break
        codebook = new_codebook
    mids = (codebook[1:] + codebook[:-1]) / 2.0
    assign = np.searchsorted(mids, flat)
    quantized = codebook[assign].reshape(weights.shape).astype(np.float32)
    return quantized, codebook.astype(np.float32)


def affine_quantize(
    tensor: np.ndarray, bits: int = 8
) -> tuple[np.ndarray, float, float]:
    """Uniform affine quantization: ``q = round((x - min) / scale)``.

    Returns ``(codes, scale, zero)`` where ``codes`` is an unsigned
    integer array (uint8 for ``bits <= 8``) and ``x ≈ zero + codes *
    scale``.  The wire cost is one code per element plus the two-float
    header — the activation-payload sibling of :func:`kmeans_quantize`'s
    codebook scheme.
    """
    if not 1 <= bits <= 16:
        raise ValueError(f"bits must be in [1, 16], got {bits}")
    tensor = np.asarray(tensor, dtype=np.float32)
    lo, hi = float(tensor.min()), float(tensor.max())
    dtype = np.uint8 if bits <= 8 else np.uint16
    if lo == hi:
        return np.zeros(tensor.shape, dtype=dtype), 0.0, lo
    scale = (hi - lo) / (2**bits - 1)
    codes = np.round((tensor - lo) / scale).astype(dtype)
    return codes, scale, lo


def affine_dequantize(codes: np.ndarray, scale: float, zero: float) -> np.ndarray:
    """Reconstruct float32 values from :func:`affine_quantize` output."""
    return (zero + codes.astype(np.float32) * np.float32(scale)).astype(np.float32)


def quantize_model(
    model: Module, bits: int, rng: np.random.Generator | int | None = None
) -> dict[str, int]:
    """Quantize every weight matrix in place; returns per-layer codebook sizes."""
    rng = as_generator(rng)
    sizes: dict[str, int] = {}
    for name, param in model.named_parameters():
        if name.endswith("bias"):
            continue
        quantized, codebook = kmeans_quantize(param.data, bits, rng)
        param.data = quantized
        sizes[name] = int(codebook.size)
    return sizes
