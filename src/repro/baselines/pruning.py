"""Network pruning primitives.

Two flavors:

* **Unstructured magnitude pruning** — zero the smallest-magnitude
  weights.  Reduces model size, not (dense) compute; used by the Deep
  Compression recipe inside AdaDeep's search space.
* **Structured channel pruning** — rebuild the LeNet with only the
  highest-importance conv channels, which *does* cut MACs and therefore
  simulated latency.  Channel importance is the filter's L1 norm (Li et
  al., 2017), the standard criterion.
"""

from __future__ import annotations

import numpy as np

from repro.models.lenet import LeNet
from repro.nn.layers import Conv2d, Linear
from repro.nn.module import Module

__all__ = ["magnitude_prune_tensor", "prune_model_unstructured", "channel_pruned_lenet"]


def magnitude_prune_tensor(weights: np.ndarray, sparsity: float) -> np.ndarray:
    """Zero out the ``sparsity`` fraction of smallest-|w| entries (copy)."""
    if not 0.0 <= sparsity < 1.0:
        raise ValueError(f"sparsity must be in [0, 1), got {sparsity}")
    if sparsity == 0.0:
        return weights.copy()
    flat = np.abs(weights).ravel()
    k = int(sparsity * flat.size)
    if k == 0:
        return weights.copy()
    threshold = np.partition(flat, k - 1)[k - 1]
    out = weights.copy()
    out[np.abs(out) <= threshold] = 0.0
    return out


def prune_model_unstructured(model: Module, sparsity: float) -> int:
    """Magnitude-prune every weight matrix in place; returns zeroed count.

    Biases are left untouched (standard practice — negligible size, large
    accuracy impact).
    """
    zeroed = 0
    for name, param in model.named_parameters():
        if name.endswith("bias"):
            continue
        before = np.count_nonzero(param.data)
        param.data = magnitude_prune_tensor(param.data, sparsity)
        zeroed += before - np.count_nonzero(param.data)
    return zeroed


def _top_channels(weight: np.ndarray, keep: int) -> np.ndarray:
    """Indices of the ``keep`` filters with the largest L1 norm, sorted."""
    importance = np.abs(weight.reshape(weight.shape[0], -1)).sum(axis=1)
    return np.sort(np.argsort(importance)[::-1][:keep])


def channel_pruned_lenet(lenet: LeNet, keep_fraction: float, rng=None) -> LeNet:
    """Structurally pruned copy of a trained LeNet.

    Every conv layer keeps ``ceil(keep_fraction * C)`` output channels
    (by L1 importance); the following layer's input channels are sliced
    to match.  The fc1 input slice accounts for conv3's spatial fan-out.
    The returned model is a fully functional, genuinely smaller LeNet
    whose simulated latency reflects the reduced MACs.
    """
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError(f"keep_fraction must be in (0, 1], got {keep_fraction}")

    conv1: Conv2d = lenet.features[0]
    conv2: Conv2d = lenet.features[3]
    conv3: Conv2d = lenet.features[6]
    fc1: Linear = lenet.classifier[1]
    fc2: Linear = lenet.classifier[3]

    k1 = max(1, int(np.ceil(keep_fraction * conv1.out_channels)))
    k2 = max(1, int(np.ceil(keep_fraction * conv2.out_channels)))
    k3 = max(1, int(np.ceil(keep_fraction * conv3.out_channels)))

    idx1 = _top_channels(conv1.weight.data, k1)
    idx2 = _top_channels(conv2.weight.data, k2)
    idx3 = _top_channels(conv3.weight.data, k3)

    pruned = LeNet(num_classes=lenet.num_classes, rng=rng)
    # Rebuild with reduced widths by replacing layers wholesale.
    new_conv1 = Conv2d(1, k1, kernel_size=conv1.kernel_size, padding=conv1.padding, rng=rng)
    new_conv1.weight.data = conv1.weight.data[idx1].copy()
    new_conv1.bias.data = conv1.bias.data[idx1].copy()

    new_conv2 = Conv2d(k1, k2, kernel_size=conv2.kernel_size, padding=conv2.padding, rng=rng)
    new_conv2.weight.data = conv2.weight.data[np.ix_(idx2, idx1)].copy()
    new_conv2.bias.data = conv2.bias.data[idx2].copy()

    new_conv3 = Conv2d(k2, k3, kernel_size=conv3.kernel_size, padding=conv3.padding, rng=rng)
    new_conv3.weight.data = conv3.weight.data[np.ix_(idx3, idx2)].copy()
    new_conv3.bias.data = conv3.bias.data[idx3].copy()

    # fc1's input is conv3 flattened: (C3, H, W) → channel-major blocks.
    spatial = fc1.in_features // conv3.out_channels
    w = fc1.weight.data.reshape(fc1.out_features, conv3.out_channels, spatial)
    new_fc1 = Linear(k3 * spatial, fc1.out_features, rng=rng)
    new_fc1.weight.data = np.ascontiguousarray(
        w[:, idx3, :].reshape(fc1.out_features, k3 * spatial)
    )
    new_fc1.bias.data = fc1.bias.data.copy()

    new_fc2 = Linear(fc2.in_features, fc2.out_features, rng=rng)
    new_fc2.weight.data = fc2.weight.data.copy()
    new_fc2.bias.data = fc2.bias.data.copy()

    pruned.features.register_module("0", new_conv1)
    pruned.features.register_module("3", new_conv2)
    pruned.features.register_module("6", new_conv3)
    pruned.classifier.register_module("1", new_fc1)
    pruned.classifier.register_module("3", new_fc2)
    return pruned
