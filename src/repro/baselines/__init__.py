"""`repro.baselines` — the competing systems from the paper's evaluation.

* :mod:`pruning` / :mod:`quantization` — DNN compression primitives.
* :mod:`adadeep` — AdaDeep-style usage-driven compression: a controller
  that searches combinations of compression techniques under an accuracy
  budget (Liu et al., 2020).
* :mod:`subflow` — SubFlow-style induced-subgraph execution: run a
  utilization-limited subset of every layer at inference time
  (Lee & Nirjon, 2020).
"""

from repro.baselines.pruning import (
    magnitude_prune_tensor,
    prune_model_unstructured,
    channel_pruned_lenet,
)
from repro.baselines.quantization import kmeans_quantize, quantize_model
from repro.baselines.adadeep import AdaDeepCompressor, AdaDeepResult
from repro.baselines.subflow import SubFlowExecutor

__all__ = [
    "magnitude_prune_tensor",
    "prune_model_unstructured",
    "channel_pruned_lenet",
    "kmeans_quantize",
    "quantize_model",
    "AdaDeepCompressor",
    "AdaDeepResult",
    "SubFlowExecutor",
]
