"""AdaDeep-style usage-driven DNN compression (Liu et al., 2020).

AdaDeep "automatically selects the most suitable combination of
compression techniques and the corresponding compression hyperparameters
for a given DNN" under performance/resource constraints.  This module
reproduces that behaviour at the scale of the paper's evaluation:

* search space: structured channel pruning (keep fraction) x k-means
  weight quantization (bit width), the two classic Deep-Compression axes;
* each candidate is compressed from the trained baseline, briefly
  fine-tuned, and scored;
* the controller picks the *fastest* candidate (simulated latency on the
  target device) whose accuracy loss stays within the budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np

from repro.baselines.pruning import channel_pruned_lenet
from repro.baselines.quantization import quantize_model
from repro.core.config import TrainConfig
from repro.core.trainer import evaluate_accuracy, fit_classifier
from repro.data.dataset import ArrayDataset
from repro.hw.device import DeviceProfile
from repro.hw.latency import model_latency
from repro.models.lenet import LeNet
from repro.utils.logging import get_logger
from repro.utils.rng import as_generator

__all__ = ["AdaDeepCompressor", "AdaDeepResult"]

logger = get_logger("baselines.adadeep")


@dataclass
class AdaDeepResult:
    """Chosen operating point of the AdaDeep controller."""

    model: LeNet
    keep_fraction: float
    quant_bits: int
    accuracy: float
    latency_s: float
    candidates_evaluated: int


class AdaDeepCompressor:
    """Controller searching the compression space under an accuracy budget.

    Parameters
    ----------
    keep_fractions, bit_widths:
        The candidate grid (paper-scale defaults).
    accuracy_budget:
        Maximum tolerated accuracy drop versus the uncompressed baseline.
    finetune:
        Short recovery training applied to each pruned candidate before
        scoring (AdaDeep fine-tunes inside its optimization loop).
    """

    def __init__(
        self,
        keep_fractions: tuple[float, ...] = (0.65, 0.8, 0.9),
        bit_widths: tuple[int, ...] = (8, 5),
        accuracy_budget: float = 0.01,
        finetune: TrainConfig | None = None,
    ) -> None:
        self.keep_fractions = keep_fractions
        self.bit_widths = bit_widths
        self.accuracy_budget = accuracy_budget
        self.finetune = finetune or TrainConfig(epochs=1, batch_size=128, lr=5e-4)

    def compress(
        self,
        baseline: LeNet,
        train_ds: ArrayDataset,
        test_ds: ArrayDataset,
        device: DeviceProfile,
        rng: np.random.Generator | int | None = None,
    ) -> AdaDeepResult:
        """Search the grid; return the fastest candidate within budget.

        Falls back to the most accurate candidate if none meets the
        budget (AdaDeep always returns *a* compressed network).
        """
        rng = as_generator(rng)
        base_acc = evaluate_accuracy(baseline, test_ds)
        floor = base_acc - self.accuracy_budget

        best: AdaDeepResult | None = None
        fallback: AdaDeepResult | None = None
        n_evaluated = 0
        for keep, bits in product(self.keep_fractions, self.bit_widths):
            candidate = channel_pruned_lenet(baseline, keep, rng=rng)
            fit_classifier(candidate, train_ds, self.finetune, rng=rng)
            quantize_model(candidate, bits, rng=rng)
            acc = evaluate_accuracy(candidate, test_ds)
            latency = model_latency(candidate, device)
            n_evaluated += 1
            logger.info(
                "candidate keep=%.2f bits=%d: acc=%.4f latency=%.3fms",
                keep,
                bits,
                acc,
                latency * 1e3,
            )
            result = AdaDeepResult(
                model=candidate,
                keep_fraction=keep,
                quant_bits=bits,
                accuracy=acc,
                latency_s=latency,
                candidates_evaluated=n_evaluated,
            )
            if acc >= floor and (best is None or latency < best.latency_s):
                best = result
            if fallback is None or acc > fallback.accuracy:
                fallback = result

        chosen = best if best is not None else fallback
        assert chosen is not None, "grid search evaluated no candidates"
        return AdaDeepResult(
            model=chosen.model,
            keep_fraction=chosen.keep_fraction,
            quant_bits=chosen.quant_bits,
            accuracy=chosen.accuracy,
            latency_s=chosen.latency_s,
            candidates_evaluated=n_evaluated,
        )
