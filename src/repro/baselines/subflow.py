"""SubFlow-style induced-subgraph execution (Lee & Nirjon, RTAS 2020).

SubFlow executes "a subset of the DNN during runtime" to meet a time
constraint: at a utilization level u, only the most important neurons /
channels of each layer run.  This module reproduces both halves:

* **accuracy** — real masked execution of the trained LeNet (top-u
  channels by L1 importance; non-selected activations are zeroed), and
* **latency** — the simulated cost of the *induced sub-network*, whose
  conv MACs shrink by u on both the producer and consumer side.

No retraining is performed: SubFlow's selling point is switching the
utilization level dynamically at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.device import DeviceProfile
from repro.hw.flops import model_cost
from repro.models.lenet import LeNet
from repro.nn import no_grad
from repro.nn.layers import Conv2d
from repro.nn.tensor import Tensor

__all__ = ["SubFlowExecutor"]


@dataclass(frozen=True)
class _LayerMask:
    """Active-channel mask for one conv layer."""

    active: np.ndarray  # bool (C_out,)

    @property
    def fraction(self) -> float:
        return float(self.active.mean())


class SubFlowExecutor:
    """Utilization-gated execution of a trained LeNet."""

    def __init__(self, model: LeNet, utilization: float) -> None:
        if not 0.0 < utilization <= 1.0:
            raise ValueError(f"utilization must be in (0, 1], got {utilization}")
        self.model = model
        self.utilization = utilization
        self.masks = self._build_masks()

    def _build_masks(self) -> dict[int, _LayerMask]:
        """Keep the ceil(u*C) most important channels of each conv layer.

        The last conv layer stays complete: its outputs feed the
        classifier head directly and SubFlow never drops the output
        interface of the network.
        """
        masks: dict[int, _LayerMask] = {}
        convs = [
            (i, layer)
            for i, layer in enumerate(self.model.features)
            if isinstance(layer, Conv2d)
        ]
        for rank, (i, conv) in enumerate(convs):
            c = conv.out_channels
            if rank == len(convs) - 1:
                active = np.ones(c, dtype=bool)
            else:
                keep = max(1, int(np.ceil(self.utilization * c)))
                importance = np.abs(conv.weight.data.reshape(c, -1)).sum(axis=1)
                active = np.zeros(c, dtype=bool)
                active[np.argsort(importance)[::-1][:keep]] = True
            masks[i] = _LayerMask(active=active)
        return masks

    def predict(self, images: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Masked inference: suppressed channels output zero."""
        self.model.eval()
        out = np.empty(images.shape[0], dtype=np.int64)
        with no_grad():
            for start in range(0, images.shape[0], batch_size):
                sl = slice(start, start + batch_size)
                x = Tensor(images[sl])
                for i, layer in enumerate(self.model.features):
                    x = layer(x)
                    if i in self.masks:
                        mask = self.masks[i].active.astype(np.float32)
                        x = x * Tensor(mask[None, :, None, None])
                logits = self.model.classifier(x)
                out[sl] = logits.data.argmax(axis=1)
        return out

    def accuracy(self, images: np.ndarray, labels: np.ndarray) -> float:
        return float((self.predict(images) == np.asarray(labels)).mean())

    def latency(self, device: DeviceProfile) -> float:
        """Simulated latency of the induced sub-network.

        Each conv layer's MACs scale by (active-out fraction) x
        (active-in fraction of the previous conv); pooling/dense costs
        are unchanged (SubFlow keeps the head intact).
        """
        stages = model_cost(self.model)
        total = device.inference_overhead_s
        conv_positions = sorted(self.masks)
        in_frac = 1.0  # first conv consumes the full input image
        conv_seen = 0
        for stage in stages:
            for layer in stage.layers:
                t = device.layer_latency(layer)
                if layer.kind == "conv":
                    pos = conv_positions[conv_seen]
                    out_frac = self.masks[pos].fraction
                    compute = t - device.layer_overhead_s
                    t = compute * out_frac * in_frac + device.layer_overhead_s
                    in_frac = out_frac
                    conv_seen += 1
                total += t
        return total
