"""Configuration dataclasses for training and the CBNet pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field, asdict

__all__ = ["TrainConfig", "PipelineConfig"]


@dataclass(frozen=True)
class TrainConfig:
    """Hyperparameters for one training run."""

    epochs: int = 12
    batch_size: int = 64
    lr: float = 1e-3
    optimizer: str = "adam"  # "adam" | "sgd"
    momentum: float = 0.9  # SGD only
    weight_decay: float = 0.0
    grad_clip: float | None = 5.0

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValueError(f"epochs must be positive, got {self.epochs}")
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {self.batch_size}")
        if self.lr <= 0:
            raise ValueError(f"lr must be positive, got {self.lr}")
        if self.optimizer not in ("adam", "sgd"):
            raise ValueError(f"optimizer must be 'adam' or 'sgd', got {self.optimizer!r}")

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass(frozen=True)
class PipelineConfig:
    """End-to-end CBNet build configuration for one dataset.

    ``entropy_threshold=None`` means "tune on the training set" (the paper
    reports hand-tuned per-dataset values, exposed in
    :data:`repro.core.thresholds.PAPER_THRESHOLDS`).
    """

    dataset: str = "mnist"
    seed: int = 0
    n_train: int | None = None  # None → dataset default
    n_test: int | None = None
    entropy_threshold: float | None = None
    classifier_train: TrainConfig = field(default_factory=TrainConfig)
    autoencoder_train: TrainConfig = field(
        default_factory=lambda: TrainConfig(epochs=12, batch_size=128, lr=1e-3)
    )
    # Brief recovery training of the truncated classifier on *converted*
    # images.  The paper uses the truncated branch weights as-is; in this
    # reproduction the autoencoder's reconstructions sit slightly off the
    # branch's training distribution (synthetic-data effect, see DESIGN.md
    # §2), and 2-3 recovery epochs restore the paper's accuracy ordering
    # (CBNet >= BranchyNet on hard-heavy datasets).  Set False for the
    # strictly-literal protocol.
    finetune_lightweight: bool = True
    finetune_train: TrainConfig = field(
        default_factory=lambda: TrainConfig(epochs=3, batch_size=128, lr=5e-4)
    )
    cache: bool = True

    def to_dict(self) -> dict:
        return asdict(self)
