"""Generalized CBNet — the paper's future-work directions (§V), implemented.

The conclusion sketches two extensions:

1. **"extending the applicability of converting autoencoders to
   non-early-exiting DNNs ... eliminating the dependency on branchynet
   for easy-hard classification"** — :func:`build_generalized_cbnet`
   builds the entire pipeline from a *plain* LeNet: the lightweight
   classifier is a truncation of the first ``k`` feature layers
   (§III-B's "layer 1 through k < N" recipe) with a fresh head, and the
   easy/hard labels come from that truncated classifier's own prediction
   entropy instead of a BranchyNet exit gate.

2. **"removing the decoder block"** — :class:`EncoderOnlyCBNet` drops
   the 784-wide decoder: the encoder's bottleneck code feeds a small
   dense classifier directly.  The reconstruction stage disappears from
   the latency budget entirely (the code classifier costs a few
   thousand MACs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cbnet import CBNet
from repro.core.config import TrainConfig
from repro.core.labeling import LabelingResult
from repro.core.pairing import build_conversion_targets
from repro.core.trainer import fit_autoencoder, fit_classifier
from repro.data.dataset import ArrayDataset
from repro.data.transforms import flatten, to_unit_sum
from repro.models.autoencoder import ConvertingAutoencoder, TABLE1_SPECS
from repro.models.branchynet import _softmax_np
from repro.models.lenet import LeNet
from repro.models.lightweight import LightweightClassifier
from repro.nn import Tensor, no_grad
from repro.nn import functional as F
from repro.nn.layers import Linear, ReLU
from repro.nn.module import Module, Sequential
from repro.utils.logging import get_logger
from repro.utils.rng import as_generator, derive_seed

__all__ = [
    "classifier_entropy",
    "label_by_classifier_entropy",
    "build_generalized_cbnet",
    "GeneralizedArtifacts",
    "EncoderOnlyCBNet",
    "build_encoder_only_cbnet",
]

logger = get_logger("core.generalized")


def classifier_entropy(
    classifier: Module, images: np.ndarray, batch_size: int = 512
) -> np.ndarray:
    """Prediction entropy of any logits-producing classifier."""
    classifier.eval()
    out = np.empty(images.shape[0], dtype=np.float32)
    with no_grad():
        for start in range(0, images.shape[0], batch_size):
            sl = slice(start, start + batch_size)
            logits = classifier(Tensor(images[sl])).data
            out[sl] = F.entropy(_softmax_np(logits), axis=1)
    return out


def label_by_classifier_entropy(
    classifier: Module,
    images: np.ndarray,
    threshold: float | None = None,
    easy_quantile: float = 0.8,
) -> LabelingResult:
    """Easy/hard labels without a BranchyNet.

    A sample is *easy* when the (truncated) classifier itself is already
    confident about it.  With ``threshold=None`` the gate is set at the
    ``easy_quantile`` of the entropy distribution — a data-driven default
    that needs no per-dataset hand-tuning (addressing the paper's reliance
    on tuned thresholds).
    """
    entropy = classifier_entropy(classifier, images)
    if threshold is None:
        threshold = float(np.quantile(entropy, easy_quantile))
    return LabelingResult(easy=entropy < threshold, entropy=entropy, threshold=threshold)


@dataclass
class GeneralizedArtifacts:
    """Products of the BranchyNet-free CBNet build."""

    cbnet: CBNet
    labeling: LabelingResult
    source_model: LeNet
    keep_layers: int


def build_generalized_cbnet(
    lenet: LeNet,
    train_ds: ArrayDataset,
    dataset_name: str,
    keep_layers: int = 3,
    seed: int = 0,
    head_train: TrainConfig | None = None,
    ae_train: TrainConfig | None = None,
    easy_quantile: float = 0.8,
    finetune: bool = True,
) -> GeneralizedArtifacts:
    """CBNet from a plain (non-early-exit) trained LeNet.

    Steps (paper §III-B generalization + §V):

    1. truncate ``lenet.features[:keep_layers]``, attach a fresh head,
       train the head briefly (the trunk stays frozen in effect — its
       gradients flow but one epoch barely moves it);
    2. label easy/hard by the truncated classifier's own entropy;
    3. train the Table-I converting autoencoder on same-class easy targets;
    4. optional recovery fine-tune on converted images (as in the main
       pipeline).
    """
    rng = as_generator(derive_seed(seed, dataset_name, "generalized"))
    head_train = head_train or TrainConfig(epochs=4, batch_size=128, lr=1e-3)
    ae_train = ae_train or TrainConfig(epochs=10, batch_size=128, lr=1e-3)

    # -- 1. truncated classifier from the plain DNN ---------------------- #
    lightweight = LightweightClassifier.truncate_lenet(
        lenet, keep_layers=keep_layers, rng=rng
    )
    logger.info("[%s] training truncated head (k=%d)", dataset_name, keep_layers)
    fit_classifier(lightweight, train_ds, head_train, rng=rng)

    # -- 2. BranchyNet-free easy/hard labels ------------------------------ #
    labeling = label_by_classifier_entropy(
        lightweight, train_ds.images, easy_quantile=easy_quantile
    )
    logger.info(
        "[%s] entropy gate %.4g → easy %.1f%%",
        dataset_name,
        labeling.threshold,
        100 * labeling.easy_fraction,
    )

    # -- 3. converting autoencoder ---------------------------------------- #
    autoencoder = ConvertingAutoencoder.for_dataset(dataset_name, rng=rng)
    inputs = flatten(train_ds.images)
    target_images = build_conversion_targets(
        train_ds.images, train_ds.labels, labeling.easy, rng=rng, entropy=labeling.entropy
    )
    targets = flatten(to_unit_sum(target_images)) * np.float32(
        autoencoder.spec.input_dim
    )
    fit_autoencoder(autoencoder, inputs, targets, ae_train, rng=rng)

    cbnet = CBNet(autoencoder=autoencoder, classifier=lightweight)

    # -- 4. recovery fine-tune -------------------------------------------- #
    if finetune:
        converted = cbnet.convert(train_ds.images)
        fit_classifier(
            lightweight,
            ArrayDataset(converted, train_ds.labels),
            TrainConfig(epochs=3, batch_size=128, lr=5e-4),
            rng=rng,
        )

    return GeneralizedArtifacts(
        cbnet=cbnet,
        labeling=labeling,
        source_model=lenet,
        keep_layers=keep_layers,
    )


# ---------------------------------------------------------------------- #
# decoder-free variant
# ---------------------------------------------------------------------- #
@dataclass
class EncoderOnlyCBNet:
    """CBNet without the decoder: encoder code → dense classifier.

    The decoder exists only to produce an image for a *conv* classifier;
    if the classifier consumes the bottleneck code directly, the 784-wide
    reconstruction layer (the AE's single most expensive GEMM after FC1)
    is gone from the inference budget.
    """

    encoder: Sequential
    code_classifier: Sequential
    input_dim: int = 784

    def predict(self, images: np.ndarray, batch_size: int = 512) -> np.ndarray:
        flat = images.reshape(images.shape[0], -1).astype(np.float32)
        out = np.empty(flat.shape[0], dtype=np.int64)
        self.encoder.eval()
        self.code_classifier.eval()
        with no_grad():
            for start in range(0, flat.shape[0], batch_size):
                sl = slice(start, start + batch_size)
                code = self.encoder(Tensor(flat[sl]))
                out[sl] = self.code_classifier(code).data.argmax(axis=1)
        return out

    def accuracy(self, images: np.ndarray, labels: np.ndarray) -> float:
        return float((self.predict(images) == np.asarray(labels)).mean())

    def stages(self) -> list[tuple[str, Sequential]]:
        return [("encoder", self.encoder), ("code_classifier", self.code_classifier)]


def build_encoder_only_cbnet(
    autoencoder: ConvertingAutoencoder,
    train_ds: ArrayDataset,
    num_classes: int = 10,
    hidden: int = 64,
    seed: int = 0,
    train: TrainConfig | None = None,
) -> EncoderOnlyCBNet:
    """Drop the decoder of a trained converting AE; classify its codes.

    The donor autoencoder is left untouched: the encoder is *deep-copied*
    before the head training (gradients flow through the copy, adapting
    the code space to classification without corrupting the original
    AE's encoder-decoder alignment).
    """
    import copy

    rng = as_generator(derive_seed(seed, "encoder-only"))
    train = train or TrainConfig(epochs=6, batch_size=128, lr=1e-3)
    autoencoder = copy.deepcopy(autoencoder)
    code_width = autoencoder.spec.layer_sizes[-1]
    head = Sequential(
        Linear(code_width, hidden, rng=rng),
        ReLU(),
        Linear(hidden, num_classes, rng=rng),
    )

    class _CodeModel(Module):
        def __init__(self, encoder: Sequential, head: Sequential) -> None:
            super().__init__()
            self.encoder = encoder
            self.head = head

        def forward(self, x: Tensor) -> Tensor:
            return self.head(self.encoder(x.flatten_batch()))

    model = _CodeModel(autoencoder.encoder, head)
    flat_ds = ArrayDataset(train_ds.images, train_ds.labels, train_ds.meta)
    fit_classifier(model, flat_ds, train, rng=rng)
    return EncoderOnlyCBNet(
        encoder=autoencoder.encoder,
        code_classifier=head,
        input_dim=autoencoder.spec.input_dim,
    )
