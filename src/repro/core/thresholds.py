"""Entropy-threshold selection for the BranchyNet exit gate.

The paper's values (§IV-B1): 0.05 for MNIST, 0.5 for FMNIST, 0.025 for
KMNIST — "tuned to achieve the maximum performance for BranchyNet".
:func:`tune_threshold` reproduces that tuning procedure: pick the largest
exit rate whose accuracy stays within ``accuracy_tolerance`` of the best
achievable accuracy on a held-out set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.branchynet import BranchyLeNet

__all__ = ["PAPER_THRESHOLDS", "ThresholdSweepPoint", "sweep_thresholds", "tune_threshold"]

PAPER_THRESHOLDS: dict[str, float] = {
    "mnist": 0.05,
    "fmnist": 0.5,
    "kmnist": 0.025,
}

# Default sweep grid: log-spaced entropies spanning "almost never exit"
# to "always exit" for a 10-class softmax (max entropy ln 10 ≈ 2.30).
DEFAULT_GRID = tuple(float(t) for t in np.geomspace(1e-3, 2.3, 25))


@dataclass(frozen=True)
class ThresholdSweepPoint:
    """Accuracy/exit-rate trade-off at one entropy threshold."""

    threshold: float
    accuracy: float
    exit_rate: float


def sweep_thresholds(
    branchy: BranchyLeNet,
    images: np.ndarray,
    labels: np.ndarray,
    grid: tuple[float, ...] = DEFAULT_GRID,
) -> list[ThresholdSweepPoint]:
    """Evaluate accuracy and early-exit rate across a threshold grid.

    The stem/branch/trunk forward passes run once; gating is re-applied
    per threshold on the cached entropies and per-exit predictions.
    """
    from repro.nn import no_grad
    from repro.nn.tensor import Tensor
    from repro.models.branchynet import _softmax_np
    from repro.nn import functional as F

    branchy.eval()
    n = images.shape[0]
    branch_pred = np.empty(n, dtype=np.int64)
    trunk_pred = np.empty(n, dtype=np.int64)
    ent = np.empty(n, dtype=np.float32)
    with no_grad():
        for start in range(0, n, 512):
            sl = slice(start, start + 512)
            shared = branchy.stem(Tensor(images[sl]))
            bl = branchy.branch(shared).data
            probs = _softmax_np(bl)
            ent[sl] = F.entropy(probs, axis=1)
            branch_pred[sl] = probs.argmax(axis=1)
            trunk_pred[sl] = branchy.trunk(shared).data.argmax(axis=1)

    points = []
    for t in grid:
        exit_mask = ent < t
        preds = np.where(exit_mask, branch_pred, trunk_pred)
        points.append(
            ThresholdSweepPoint(
                threshold=float(t),
                accuracy=float((preds == labels).mean()),
                exit_rate=float(exit_mask.mean()),
            )
        )
    return points


def tune_threshold(
    branchy: BranchyLeNet,
    images: np.ndarray,
    labels: np.ndarray,
    grid: tuple[float, ...] = DEFAULT_GRID,
    accuracy_tolerance: float = 0.005,
) -> float:
    """Pick the threshold maximizing exit rate within an accuracy budget.

    "Maximum performance" in the paper means fastest inference that does
    not sacrifice accuracy: among thresholds whose accuracy is within
    ``accuracy_tolerance`` of the sweep's best, return the one with the
    highest early-exit rate.
    """
    points = sweep_thresholds(branchy, images, labels, grid)
    best_acc = max(p.accuracy for p in points)
    eligible = [p for p in points if p.accuracy >= best_acc - accuracy_tolerance]
    chosen = max(eligible, key=lambda p: p.exit_rate)
    return chosen.threshold
