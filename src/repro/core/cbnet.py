"""CBNet: converting autoencoder + lightweight classifier (paper Fig. 2).

Inference = AE hard→easy conversion followed by the truncated early-exit
classifier.  When the AE uses the paper's Softmax reconstruction head,
its outputs are probability images; :meth:`CBNet.predict` rescales them
back to peak-1 before classification (see
:mod:`repro.models.autoencoder`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.transforms import from_unit_sum, unflatten
from repro.models.autoencoder import ConvertingAutoencoder
from repro.models.lightweight import LightweightClassifier

__all__ = ["CBNet"]


@dataclass
class CBNet:
    """The deployable CBNet inference pipeline.

    Attributes
    ----------
    autoencoder:
        Trained converting autoencoder (Table I architecture).
    classifier:
        Trained lightweight classifier (truncated BranchyNet branch).
    image_shape:
        Per-sample (C, H, W); used to reshape AE outputs for the conv
        classifier.
    """

    autoencoder: ConvertingAutoencoder
    classifier: LightweightClassifier
    image_shape: tuple[int, int, int] = (1, 28, 28)

    def convert(self, images: np.ndarray, batch_size: int = 512) -> np.ndarray:
        """Run only the conversion stage → NCHW easy-image batch."""
        flat = self.autoencoder.convert(images, batch_size=batch_size)
        nchw = unflatten(flat, self.image_shape)
        if self.autoencoder.spec.output_activation == "softmax":
            nchw = from_unit_sum(nchw)
        return nchw

    def predict(self, images: np.ndarray, batch_size: int = 512) -> np.ndarray:
        """Full CBNet inference: labels for a raw NCHW (or flat) array."""
        converted = self.convert(images, batch_size=batch_size)
        return self.classifier.predict(converted, batch_size=batch_size)

    def predict_with_images(
        self, images: np.ndarray, batch_size: int = 512
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return (converted_images, predictions) — used by the examples
        to visualize the hard→easy transformation."""
        converted = self.convert(images, batch_size=batch_size)
        return converted, self.classifier.predict(converted, batch_size=batch_size)

    def accuracy(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Top-1 accuracy of the full pipeline."""
        return float((self.predict(images) == np.asarray(labels)).mean())

    def stages(self):
        """Named stages for the FLOPs/latency models: AE then classifier."""
        return self.autoencoder.stages() + self.classifier.stages()
