"""Hard→easy target pairing for autoencoder training (paper Fig. 4).

"All images (both hard and easy) were then passed through the converting
autoencoder as training input.  For each image as input, an easy image
that belongs to the same class was randomly chosen as the target output."
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["build_conversion_targets"]


def build_conversion_targets(
    images: np.ndarray,
    labels: np.ndarray,
    easy_mask: np.ndarray,
    rng: np.random.Generator | int | None = None,
    entropy: np.ndarray | None = None,
) -> np.ndarray:
    """Return a target image (same shape as ``images``) for every sample.

    For each input, a uniformly random *easy* image of the same class.
    If a class has no easy images at all (possible for tiny datasets or a
    very tight threshold), the fallback target is the lowest-entropy image
    of that class when ``entropy`` is given, else the first image of the
    class — with a warning either way, since it deviates from the paper's
    assumption that each class has easy representatives.
    """
    rng = as_generator(rng)
    labels = np.asarray(labels)
    easy_mask = np.asarray(easy_mask, dtype=bool)
    if images.shape[0] != labels.shape[0] or labels.shape[0] != easy_mask.shape[0]:
        raise ValueError(
            f"length mismatch: images={images.shape[0]}, labels={labels.shape[0]}, "
            f"easy_mask={easy_mask.shape[0]}"
        )

    target_idx = np.empty(labels.shape[0], dtype=np.int64)
    for cls in np.unique(labels):
        cls_rows = np.flatnonzero(labels == cls)
        easy_rows = cls_rows[easy_mask[cls_rows]]
        if easy_rows.size == 0:
            from repro.utils.logging import get_logger

            get_logger("core.pairing").warning(
                "class %d has no easy images; falling back to its most confident image",
                int(cls),
            )
            if entropy is not None:
                easy_rows = cls_rows[[int(np.argmin(entropy[cls_rows]))]]
            else:
                easy_rows = cls_rows[:1]
        target_idx[cls_rows] = easy_rows[rng.integers(0, easy_rows.size, cls_rows.size)]
    return images[target_idx]
