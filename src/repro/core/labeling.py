"""Easy/hard labeling via a trained BranchyNet (paper Fig. 4, §III-A2).

"We passed images from the training dataset through a pre-trained
BranchyNet model for inference.  We labeled the images that exited the
network early as easy images and labeled the rest as hard images."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.branchynet import BranchyLeNet

__all__ = ["LabelingResult", "label_easy_hard"]


@dataclass
class LabelingResult:
    """Per-sample easy/hard labels derived from BranchyNet's exit gate."""

    easy: np.ndarray  # (N,) bool — exited at the branch
    entropy: np.ndarray  # (N,) branch-softmax entropy
    threshold: float

    @property
    def easy_fraction(self) -> float:
        return float(self.easy.mean()) if self.easy.size else 0.0

    @property
    def hard_fraction(self) -> float:
        return 1.0 - self.easy_fraction

    def easy_indices(self) -> np.ndarray:
        return np.flatnonzero(self.easy)

    def hard_indices(self) -> np.ndarray:
        return np.flatnonzero(~self.easy)


def label_easy_hard(
    branchy: BranchyLeNet,
    images: np.ndarray,
    threshold: float | None = None,
    batch_size: int = 256,
) -> LabelingResult:
    """Label each image easy (early exit) or hard via branch entropy."""
    threshold = branchy.entropy_threshold if threshold is None else float(threshold)
    entropy = branchy.branch_entropies(images, batch_size=batch_size)
    return LabelingResult(easy=entropy < threshold, entropy=entropy, threshold=threshold)
