"""`repro.core` — CBNet, the paper's primary contribution.

The end-to-end recipe (paper §III, Fig. 2/4):

1. Train BranchyNet-LeNet with the joint multi-exit loss.
2. Tune/set the entropy threshold; label training images *easy* (exited
   early) or *hard* (reached the final exit).
3. Train the converting autoencoder: every image (easy and hard) maps to
   a randomly chosen easy image of the same class (MSE + L1 activity).
4. Truncate the early-exit branch → lightweight classifier.
5. CBNet inference = autoencoder → lightweight classifier.
"""

from repro.core.config import TrainConfig, PipelineConfig
from repro.core.trainer import fit_classifier, fit_autoencoder, TrainHistory
from repro.core.labeling import label_easy_hard, LabelingResult
from repro.core.pairing import build_conversion_targets
from repro.core.thresholds import PAPER_THRESHOLDS, tune_threshold
from repro.core.cbnet import CBNet
from repro.core.pipeline import build_cbnet_pipeline, PipelineArtifacts, train_baseline_lenet
from repro.core.generalized import (
    build_generalized_cbnet,
    build_encoder_only_cbnet,
    label_by_classifier_entropy,
    GeneralizedArtifacts,
    EncoderOnlyCBNet,
)

__all__ = [
    "TrainConfig",
    "PipelineConfig",
    "fit_classifier",
    "fit_autoencoder",
    "TrainHistory",
    "label_easy_hard",
    "LabelingResult",
    "build_conversion_targets",
    "PAPER_THRESHOLDS",
    "tune_threshold",
    "CBNet",
    "build_cbnet_pipeline",
    "PipelineArtifacts",
    "train_baseline_lenet",
    "build_generalized_cbnet",
    "build_encoder_only_cbnet",
    "label_by_classifier_entropy",
    "GeneralizedArtifacts",
    "EncoderOnlyCBNet",
]
