"""Training loops for classifiers and the converting autoencoder.

One generic classifier loop covers LeNet, BranchyNet (multi-exit joint
loss), and lightweight-classifier fine-tuning; a dedicated loop handles
the autoencoder's regression objective with the encoder activity penalty.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import TrainConfig
from repro.data.dataloader import DataLoader
from repro.data.dataset import Dataset
from repro.nn import functional as F
from repro.nn import no_grad
from repro.nn.losses import JointExitLoss
from repro.nn.module import Module
from repro.nn.optim import Adam, SGD, clip_grad_norm
from repro.nn.tensor import Tensor
from repro.utils.logging import get_logger
from repro.utils.rng import as_generator

__all__ = ["TrainHistory", "fit_classifier", "fit_autoencoder", "evaluate_accuracy"]

logger = get_logger("core.trainer")


@dataclass
class TrainHistory:
    """Per-epoch training curve."""

    loss: list[float] = field(default_factory=list)
    accuracy: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.loss[-1] if self.loss else float("nan")

    @property
    def final_accuracy(self) -> float:
        return self.accuracy[-1] if self.accuracy else float("nan")


def _make_optimizer(model: Module, config: TrainConfig):
    if config.optimizer == "adam":
        return Adam(model.parameters(), lr=config.lr, weight_decay=config.weight_decay)
    return SGD(
        model.parameters(),
        lr=config.lr,
        momentum=config.momentum,
        weight_decay=config.weight_decay,
    )


def fit_classifier(
    model: Module,
    dataset: Dataset,
    config: TrainConfig | None = None,
    rng: np.random.Generator | int | None = None,
    eval_dataset: Dataset | None = None,
) -> TrainHistory:
    """Train a classifier with cross-entropy (joint CE for multi-exit).

    Any model whose ``forward`` returns logits — or a *list* of logits for
    multi-exit models like BranchyNet — is supported.
    """
    config = config or TrainConfig()
    rng = as_generator(rng)
    optimizer = _make_optimizer(model, config)
    joint_loss = JointExitLoss()
    loader = DataLoader(
        dataset, batch_size=config.batch_size, shuffle=True, rng=rng
    )
    history = TrainHistory()
    model.train()
    for epoch in range(config.epochs):
        epoch_loss = 0.0
        n_batches = 0
        for images, labels in loader:
            optimizer.zero_grad()
            outputs = model(Tensor(images))
            if isinstance(outputs, (list, tuple)):
                loss = joint_loss(outputs, labels)
            else:
                loss = F.cross_entropy(outputs, labels)
            loss.backward()
            if config.grad_clip is not None:
                clip_grad_norm(model.parameters(), config.grad_clip)
            optimizer.step()
            epoch_loss += float(loss.data)
            n_batches += 1
        mean_loss = epoch_loss / max(n_batches, 1)
        history.loss.append(mean_loss)
        if eval_dataset is not None:
            acc = evaluate_accuracy(model, eval_dataset)
            history.accuracy.append(acc)
            logger.info("epoch %d: loss=%.4f acc=%.4f", epoch, mean_loss, acc)
        else:
            logger.info("epoch %d: loss=%.4f", epoch, mean_loss)
    model.eval()
    return history


def evaluate_accuracy(model: Module, dataset: Dataset, batch_size: int = 512) -> float:
    """Top-1 accuracy; multi-exit models are scored on their *final* exit."""
    model.eval()
    images, labels = dataset.images, dataset.labels
    correct = 0
    with no_grad():
        for start in range(0, images.shape[0], batch_size):
            sl = slice(start, start + batch_size)
            outputs = model(Tensor(images[sl]))
            logits = outputs[-1] if isinstance(outputs, (list, tuple)) else outputs
            correct += int((logits.data.argmax(axis=1) == labels[sl]).sum())
    return correct / max(images.shape[0], 1)


def fit_autoencoder(
    autoencoder: Module,
    inputs: np.ndarray,
    targets: np.ndarray,
    config: TrainConfig | None = None,
    rng: np.random.Generator | int | None = None,
) -> TrainHistory:
    """Train the converting autoencoder.

    ``inputs``/``targets`` are flat (N, 784) float32 arrays: every image
    (easy *and* hard) as input, a same-class easy image as target (paper
    Fig. 4).  Loss = MSE + the encoder's L1 activity penalty.
    """
    config = config or TrainConfig(epochs=12, batch_size=128)
    rng = as_generator(rng)
    if inputs.shape != targets.shape:
        raise ValueError(f"inputs {inputs.shape} and targets {targets.shape} must match")
    if inputs.ndim != 2:
        raise ValueError(f"expected flat (N, D) arrays, got {inputs.shape}")
    optimizer = _make_optimizer(autoencoder, config)
    n = inputs.shape[0]
    history = TrainHistory()
    autoencoder.train()
    for epoch in range(config.epochs):
        order = rng.permutation(n)
        epoch_loss = 0.0
        n_batches = 0
        for start in range(0, n, config.batch_size):
            idx = order[start : start + config.batch_size]
            optimizer.zero_grad()
            recon = autoencoder(Tensor(inputs[idx]))
            loss = F.mse_loss(recon, Tensor(targets[idx]))
            penalty = getattr(autoencoder, "activity_penalty", lambda: None)()
            if penalty is not None:
                loss = loss + penalty
            loss.backward()
            if config.grad_clip is not None:
                clip_grad_norm(autoencoder.parameters(), config.grad_clip)
            optimizer.step()
            epoch_loss += float(loss.data)
            n_batches += 1
        mean_loss = epoch_loss / max(n_batches, 1)
        history.loss.append(mean_loss)
        logger.info("AE epoch %d: loss=%.6f", epoch, mean_loss)
    autoencoder.eval()
    return history
