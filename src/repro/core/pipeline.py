"""End-to-end CBNet construction (paper §III, Fig. 4) with disk caching.

``build_cbnet_pipeline(config)`` performs the full recipe — train
BranchyNet, label easy/hard, train the converting autoencoder, truncate
the lightweight classifier — and returns every artifact the experiments
need.  Results are cached by configuration hash so the benchmark suite
trains each pipeline once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.cbnet import CBNet
from repro.core.config import PipelineConfig, TrainConfig
from repro.core.labeling import LabelingResult, label_easy_hard
from repro.core.pairing import build_conversion_targets
from repro.core.thresholds import PAPER_THRESHOLDS, tune_threshold
from repro.core.trainer import TrainHistory, evaluate_accuracy, fit_autoencoder, fit_classifier
from repro.data import load_dataset
from repro.data.dataset import ArrayDataset
from repro.data.transforms import flatten, to_unit_sum
from repro.models.autoencoder import ConvertingAutoencoder
from repro.models.branchynet import BranchyLeNet
from repro.models.lenet import LeNet
from repro.models.lightweight import LightweightClassifier
from repro.utils.cache import ArtifactCache
from repro.utils.logging import get_logger
from repro.utils.rng import as_generator, derive_seed

__all__ = ["PipelineArtifacts", "build_cbnet_pipeline", "train_baseline_lenet"]

logger = get_logger("core.pipeline")


@dataclass
class PipelineArtifacts:
    """Everything produced by one CBNet build."""

    config: PipelineConfig
    branchynet: BranchyLeNet
    cbnet: CBNet
    labeling: LabelingResult
    entropy_threshold: float
    branchy_history: TrainHistory
    autoencoder_history: TrainHistory
    datasets: dict[str, ArrayDataset] = field(repr=False, default_factory=dict)

    @property
    def autoencoder(self) -> ConvertingAutoencoder:
        return self.cbnet.autoencoder

    @property
    def lightweight(self) -> LightweightClassifier:
        return self.cbnet.classifier


def build_cbnet_pipeline(
    config: PipelineConfig,
    datasets: dict[str, ArrayDataset] | None = None,
    ae_spec=None,
) -> PipelineArtifacts:
    """Run (or load from cache) the full CBNet build for one dataset.

    ``ae_spec`` overrides the Table-I autoencoder architecture (used by
    the ablation experiments); ``None`` selects the paper's spec for the
    dataset.
    """
    if config.cache and datasets is None:
        key = {
            "kind": "cbnet-pipeline",
            "config": config.to_dict(),
            "ae_spec": None if ae_spec is None else vars(ae_spec),
            "dataset_spec": _dataset_fingerprint(config.dataset),
            "version": 4,
        }
        return ArtifactCache().get_or_compute(key, lambda: _build(config, None, ae_spec))
    return _build(config, datasets, ae_spec)


def _dataset_fingerprint(name: str) -> dict:
    """Generation-recipe identity: a pipeline trained on a dataset must be
    invalidated when that dataset's difficulty knobs change."""
    from repro.data.synth.registry import DATASET_SPECS

    spec = DATASET_SPECS.get(name)
    if spec is None:
        return {"name": name}
    return {
        "name": name,
        "jitter": spec.jitter,
        "severity_range": list(spec.severity_range),
        "ops_per_sample": list(spec.ops_per_sample),
        "corruption_ops": list(spec.corruption_ops) if spec.corruption_ops else None,
        "hard_fraction": spec.hard_fraction,
    }


def _build(
    config: PipelineConfig,
    datasets: dict[str, ArrayDataset] | None,
    ae_spec=None,
) -> PipelineArtifacts:
    if datasets is None:
        datasets = load_dataset(
            config.dataset,
            n_train=config.n_train,
            n_test=config.n_test,
            seed=config.seed,
            cache=config.cache,
        )
    train_ds, test_ds = datasets["train"], datasets["test"]

    # -- 1. BranchyNet, jointly trained over both exits ------------------ #
    rng = as_generator(derive_seed(config.seed, config.dataset, "branchy"))
    branchy = BranchyLeNet(num_classes=10, rng=rng)
    logger.info("[%s] training BranchyNet (%d samples)", config.dataset, len(train_ds))
    branchy_history = fit_classifier(
        branchy, train_ds, config.classifier_train, rng=rng, eval_dataset=test_ds
    )

    # -- 2. entropy threshold -------------------------------------------- #
    if config.entropy_threshold is not None:
        threshold = float(config.entropy_threshold)
    elif config.dataset in PAPER_THRESHOLDS:
        threshold = PAPER_THRESHOLDS[config.dataset]
    else:
        threshold = tune_threshold(branchy, train_ds.images, train_ds.labels)
    branchy.entropy_threshold = threshold

    # -- 3. easy/hard labels over the training set ----------------------- #
    labeling = label_easy_hard(branchy, train_ds.images, threshold)
    logger.info(
        "[%s] threshold=%.4g easy=%.1f%%",
        config.dataset,
        threshold,
        100 * labeling.easy_fraction,
    )

    # -- 4. converting autoencoder ---------------------------------------- #
    ae_rng = as_generator(derive_seed(config.seed, config.dataset, "autoencoder"))
    if ae_spec is not None:
        autoencoder = ConvertingAutoencoder(ae_spec, rng=ae_rng)
    else:
        autoencoder = ConvertingAutoencoder.for_dataset(config.dataset, rng=ae_rng)
    inputs = flatten(train_ds.images)
    target_images = build_conversion_targets(
        train_ds.images,
        train_ds.labels,
        labeling.easy,
        rng=ae_rng,
        entropy=labeling.entropy,
    )
    targets = flatten(target_images)
    if autoencoder.spec.output_activation == "softmax":
        # Probability-image targets on the decoder's scale (sum = D, mean
        # pixel ~1) — matches the Softmax+Scale reconstruction head.
        targets = flatten(to_unit_sum(target_images)) * np.float32(
            autoencoder.spec.input_dim
        )
    ae_history = fit_autoencoder(
        autoencoder, inputs, targets, config.autoencoder_train, rng=ae_rng
    )

    # -- 5. truncate the lightweight classifier --------------------------- #
    lightweight = LightweightClassifier.from_branchynet(branchy).detached()
    cbnet = CBNet(autoencoder=autoencoder, classifier=lightweight)

    # -- 6. optional fine-tune on converted images (off by default: the
    #       paper uses the truncated branch weights as-is) ----------------- #
    if config.finetune_lightweight:
        converted = cbnet.convert(train_ds.images)
        ft_ds = ArrayDataset(converted, train_ds.labels)
        ft_rng = as_generator(derive_seed(config.seed, config.dataset, "finetune"))
        fit_classifier(lightweight, ft_ds, config.finetune_train, rng=ft_rng)

    return PipelineArtifacts(
        config=config,
        branchynet=branchy,
        cbnet=cbnet,
        labeling=labeling,
        entropy_threshold=threshold,
        branchy_history=branchy_history,
        autoencoder_history=ae_history,
        datasets=datasets,
    )


def train_baseline_lenet(
    dataset_name: str,
    datasets: dict[str, ArrayDataset] | None = None,
    config: TrainConfig | None = None,
    seed: int = 0,
    cache: bool = True,
    n_train: int | None = None,
    n_test: int | None = None,
) -> tuple[LeNet, TrainHistory]:
    """Train the plain LeNet baseline used throughout the evaluation."""
    config = config or TrainConfig()

    def build() -> tuple[LeNet, TrainHistory]:
        ds = datasets or load_dataset(
            dataset_name, n_train=n_train, n_test=n_test, seed=seed, cache=cache
        )
        rng = as_generator(derive_seed(seed, dataset_name, "lenet"))
        model = LeNet(num_classes=10, rng=rng)
        logger.info("[%s] training baseline LeNet", dataset_name)
        history = fit_classifier(
            model, ds["train"], config, rng=rng, eval_dataset=ds["test"]
        )
        return model, history

    if cache and datasets is None:
        key = {
            "kind": "baseline-lenet",
            "dataset": dataset_name,
            "train": config.to_dict(),
            "seed": seed,
            "n_train": n_train,
            "n_test": n_test,
            "dataset_spec": _dataset_fingerprint(dataset_name),
            "version": 3,
        }
        return ArtifactCache().get_or_compute(key, build)
    return build()
