"""In-memory LRU result cache keyed by image content hash.

Real request streams repeat (hot items dominate — see
:func:`repro.serving.arrivals.zipf_popularity`); an exact-match cache
turns every repeat into a queue bypass that costs one hash instead of a
full inference.  Keys are content hashes of the raw image bytes, so two
requests carrying the same pixels hit regardless of request identity.

This is the *serving-time* sibling of :class:`repro.utils.cache.ArtifactCache`
(which stores trained models on disk): bounded, in-memory, and
recency-evicting, because a serving process cannot hold every answer it
ever produced.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Any

import numpy as np

__all__ = ["image_key", "LRUResultCache"]


def image_key(image: np.ndarray) -> str:
    """Content hash of one image (shape- and dtype-sensitive)."""
    arr = np.ascontiguousarray(image)
    h = hashlib.blake2b(digest_size=16)
    h.update(str((arr.shape, arr.dtype.str)).encode())
    h.update(arr.tobytes())
    return h.hexdigest()


class LRUResultCache:
    """Bounded mapping from image key → stored result, LRU eviction.

    ``capacity=0`` disables the cache entirely (every lookup misses,
    nothing is stored) so the engine can treat "no cache" uniformly.
    Hit/miss/eviction counters feed the serving report.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        self.capacity = int(capacity)
        self._store: OrderedDict[str, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: str) -> bool:
        return key in self._store

    def get(self, key: str) -> Any | None:
        """Look up ``key``; bump its recency on a hit, count the outcome."""
        if key in self._store:
            self._store.move_to_end(key)
            self.hits += 1
            return self._store[key]
        self.misses += 1
        return None

    def put(self, key: str, value: Any) -> None:
        """Insert/refresh ``key``, evicting the least-recent entry if full."""
        if self.capacity == 0:
            return
        if key in self._store:
            self._store.move_to_end(key)
        self._store[key] = value
        if len(self._store) > self.capacity:
            self._store.popitem(last=False)
            self.evictions += 1

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0
