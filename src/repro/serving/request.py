"""Request/response records flowing through the serving engine.

A :class:`Request` is one inference job: an image plus its arrival time
on the engine's (virtual) clock.  The engine fills in the outcome fields
— completion time, route taken, batch it rode in — so a finished request
doubles as its own trace record; :class:`~repro.serving.engine.ServingReport`
is computed entirely from the finished request list.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Request", "Route"]


class Route:
    """How a request was ultimately served (string constants)."""

    BATCHED = "batched"  # ran through the model inside a micro-batch
    CACHED = "cached"  # answered from the LRU result cache
    EASY = "easy"  # batched, took the early/lightweight path
    HARD = "hard"  # batched, entropy-flagged → full-exit path
    SHED = "shed"  # rejected by cluster admission control (never served)

    ALL = (BATCHED, CACHED, EASY, HARD, SHED)


@dataclass
class Request:
    """One inference request and (after serving) its outcome.

    Attributes
    ----------
    req_id:
        Position in the submission order (also indexes the image array).
    arrival_s:
        Arrival time on the engine clock, seconds.
    completion_s:
        Filled by the engine: when the response left the server.
    prediction:
        Filled by the engine: the predicted class label.
    route:
        One of :class:`Route` — cache hit, easy path, or hard path.
    batch_size:
        Size of the micro-batch this request was served in (0 for cache
        hits, which bypass the batcher entirely).
    source_id:
        For cache hits: the ``req_id`` whose stored result answered this
        request; ``-1`` otherwise.
    replica_id:
        Fleet serving (:mod:`repro.cluster`): which replica served the
        request; ``-1`` for single-server runs and unserved requests.
    degraded:
        Fleet serving: the admission controller forced this request down
        the early/lightweight path under overload.
    retries:
        Fleet serving: how many times the request was re-dispatched
        after a replica crash cancelled its batch.
    dispatch_s:
        When the request left the queue for service (cache hits use the
        arrival time — they never queue); NaN for unserved requests.
    requested_route:
        The route the routing/entropy gate originally asked for, before
        any admission-control degrade forced the easy path.  Equal to
        ``route`` whenever ``degraded`` is False.
    req_class:
        Multi-tenant request-class code
        (:class:`~repro.serving.classes.ClassSet` index); 0 in
        single-class runs.
    timed_out:
        Fleet serving with a resilience layer
        (:class:`repro.faults.ResilienceConfig`): how many of this
        request's attempts were cancelled by the per-attempt timeout.
    hedged:
        Fleet serving: a speculative second attempt was dispatched for
        this request (first response won; the loser was cancelled).
    """

    req_id: int
    arrival_s: float
    completion_s: float = field(default=float("nan"))
    prediction: int = -1
    route: str = Route.BATCHED
    batch_size: int = 0
    source_id: int = -1
    replica_id: int = -1
    degraded: bool = False
    retries: int = 0
    dispatch_s: float = field(default=float("nan"))
    requested_route: str = Route.BATCHED
    req_class: int = 0
    timed_out: int = 0
    hedged: bool = False

    @property
    def sojourn_s(self) -> float:
        """Time the request spent in the system (queue + service)."""
        return self.completion_s - self.arrival_s

    @property
    def done(self) -> bool:
        return not np.isnan(self.completion_s)
