"""Easy/hard request routing on branch entropy (the serving-layer gate).

The paper's entropy gate lives *inside* BranchyNet: a sample whose
branch-softmax entropy clears the threshold exits early, the rest pay
the trunk.  At the serving layer the same statistic becomes a *router*:
a micro-batch runs the shared stem + branch once, and only the
entropy-flagged hard sub-batch is sent down the full-exit (trunk) path.
The router also powers the hybrid backend, where hard inputs are instead
converted by the CBNet autoencoder (hard→easy) and re-classified.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RouteDecision", "EntropyRouter"]


@dataclass(frozen=True)
class RouteDecision:
    """Outcome of routing one micro-batch.

    ``predictions`` carries the branch-exit labels computed during the
    same stem+branch forward pass that produced the gate statistic, so
    backends can reuse them instead of re-running the shared stem.
    """

    easy: np.ndarray  # (N,) bool — True where the early path suffices
    entropy: np.ndarray  # (N,) branch-softmax entropy (gate statistic)
    predictions: np.ndarray | None = None  # (N,) branch-exit labels

    @property
    def n_easy(self) -> int:
        return int(self.easy.sum())

    @property
    def n_hard(self) -> int:
        return int((~self.easy).sum())

    @property
    def hard_indices(self) -> np.ndarray:
        return np.flatnonzero(~self.easy)

    @property
    def easy_indices(self) -> np.ndarray:
        return np.flatnonzero(self.easy)


class EntropyRouter:
    """Split micro-batches into easy/hard sub-batches by branch entropy.

    Parameters
    ----------
    branchynet:
        A trained :class:`~repro.models.branchynet.BranchyLeNet` whose
        stem + branch produce the gate statistic.
    threshold:
        Entropy threshold; ``None`` uses the model's own
        ``entropy_threshold`` (set during pipeline construction).
    """

    def __init__(self, branchynet, threshold: float | None = None) -> None:
        self.branchynet = branchynet
        self.threshold = float(
            branchynet.entropy_threshold if threshold is None else threshold
        )
        if self.threshold < 0:
            raise ValueError(f"entropy threshold must be >= 0, got {self.threshold}")

    def split(self, images: np.ndarray) -> RouteDecision:
        """Route one image batch: easy where entropy < threshold.

        An empty batch short-circuits to an empty decision without
        touching the model — no zero-sample plan is ever traced.
        """
        images = np.asarray(images)
        if images.shape[0] == 0:
            return RouteDecision(
                easy=np.zeros(0, dtype=bool),
                entropy=np.zeros(0, dtype=np.float32),
                predictions=np.zeros(0, dtype=np.int64),
            )
        entropy, preds = self.branchynet.branch_gate(images)
        return RouteDecision(
            easy=entropy < self.threshold, entropy=entropy, predictions=preds
        )
