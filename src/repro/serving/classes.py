"""Multi-tenant request classes: per-class deadlines, priorities, weights.

Production serving fleets are shared by tenants with very different
contracts: *interactive* traffic must hit a tight per-request deadline,
*standard* traffic has a looser one, and *batch* traffic only cares
about throughput.  A :class:`RequestClass` makes that contract a
first-class spec — deadline, scheduling priority, weighted-fair
admission share, and an optional micro-batching wait cap — and a
:class:`ClassSet` is the ordered collection of classes one run serves.

The spec threads through the whole stack:

* :class:`~repro.serving.priority.PriorityBatcher` uses ``priority``
  (dispatch order) and the per-class wait cap (an urgent interactive
  arrival preempts a forming batch by pulling the flush deadline in);
* :class:`~repro.cluster.admission.WeightedFairAdmission` uses
  ``weight`` to grade shedding under overload (batch before standard
  before interactive) while reserving every class its weight share so
  no class is starved of admission;
* the report layer computes one :class:`ClassReport` per class —
  latency percentiles, deadline (SLO) attainment, shed rate — via
  :func:`per_class_reports`.

Requests carry their class as a small-int *code*: the index of the
class in its :class:`ClassSet` (mirrors the route-code scheme of
:mod:`repro.sim.records`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.metrics import latency_percentiles
from repro.eval.tables import Table
from repro.sim.records import ROUTE_CACHED, ROUTE_SHED, RequestLog

__all__ = [
    "RequestClass",
    "ClassSet",
    "ClassReport",
    "DEFAULT_CLASSES",
    "default_classes",
    "per_class_reports",
    "class_table",
]


@dataclass(frozen=True)
class RequestClass:
    """One tenant class: its SLO contract and scheduling parameters.

    Attributes
    ----------
    name:
        Human-readable class name (``"interactive"``, ``"batch"``, ...).
    priority:
        Dispatch priority — **lower value wins**.  The priority batcher
        fills every flush from the highest-priority pending requests
        first, so no batch-class request is dispatched from a queue
        while an already-due interactive request waits in it.
    deadline_s:
        Per-request sojourn target (arrival → response).  Reports score
        each class's SLO attainment against its own deadline.
    weight:
        Weighted-fair admission share.  Under overload, a class may
        always use its ``weight / total_weight`` slice of the
        outstanding budget (the no-starvation reserve), while shedding
        beyond the graded caps hits low-priority classes first.
    max_wait_s:
        Optional micro-batching wait cap for this class (``None`` uses
        the engine's ``max_wait_s``).  A tight cap on the interactive
        class is what lets an urgent arrival preempt a forming batch.
    """

    name: str
    priority: int
    deadline_s: float
    weight: float
    max_wait_s: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("request class needs a non-empty name")
        if self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {self.deadline_s}")
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")
        if self.max_wait_s is not None and self.max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {self.max_wait_s}")


class ClassSet:
    """An ordered set of :class:`RequestClass` specs for one run.

    The position of a class in the set is its **code** — the small int
    each request carries in ``RequestLog.req_class``.  Iteration order
    is construction order; scheduling order is ``by_priority``.
    """

    def __init__(self, classes) -> None:
        classes = tuple(classes)
        if not classes:
            raise ValueError("a ClassSet needs at least one RequestClass")
        names = [c.name for c in classes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate class names: {names}")
        self.classes = classes
        self._code = {c.name: i for i, c in enumerate(classes)}
        #: Class codes in dispatch order (priority asc, ties by code).
        self.by_priority = tuple(
            sorted(range(len(classes)), key=lambda i: (classes[i].priority, i))
        )
        total = sum(c.weight for c in classes)
        #: Normalized weighted-fair share per class code.
        self.shares = tuple(c.weight / total for c in classes)

    def __len__(self) -> int:
        return len(self.classes)

    def __iter__(self):
        return iter(self.classes)

    def __getitem__(self, code: int) -> RequestClass:
        return self.classes[code]

    def code(self, name: str) -> int:
        """Class code for ``name`` (raises ``KeyError`` if absent)."""
        return self._code[name]

    def names(self) -> tuple[str, ...]:
        """Class names in code order."""
        return tuple(c.name for c in self.classes)

    def wait_caps(self, default_wait_s: float) -> tuple[float, ...]:
        """Effective per-class micro-batching wait cap, in code order."""
        return tuple(
            default_wait_s if c.max_wait_s is None else c.max_wait_s
            for c in self.classes
        )

    def validate_codes(self, codes, n: int) -> np.ndarray:
        """Check one per-request class-code array and normalize to int8."""
        codes = np.asarray(codes)
        if codes.shape != (n,):
            raise ValueError(
                f"request_classes must have shape ({n},), got {codes.shape}"
            )
        if codes.size and (codes.min() < 0 or codes.max() >= len(self.classes)):
            raise ValueError(
                f"class codes must be in [0, {len(self.classes)}), "
                f"got range [{codes.min()}, {codes.max()}]"
            )
        return codes.astype(np.int8)


def default_classes(
    slo_s: float, max_wait_s: float = 0.004, weights=(0.5, 0.3, 0.2)
) -> ClassSet:
    """The canonical interactive / standard / batch mix, sized to an SLO.

    ``slo_s`` becomes the interactive deadline; standard gets 4x and
    batch 20x that budget.  The interactive wait cap is a quarter of the
    engine's batching wait (urgent arrivals preempt forming batches
    early), batch waits 4x longer (bigger, cheaper batches).
    """
    w_i, w_s, w_b = weights
    return ClassSet(
        (
            RequestClass(
                "interactive", 0, slo_s, w_i, max_wait_s=0.25 * max_wait_s
            ),
            RequestClass("standard", 1, 4.0 * slo_s, w_s),
            RequestClass("batch", 2, 20.0 * slo_s, w_b, max_wait_s=4.0 * max_wait_s),
        )
    )


#: A generic three-class mix for tests and quick starts (deadlines in
#: seconds on the calibrated virtual clock).
DEFAULT_CLASSES = default_classes(slo_s=0.05)


@dataclass(frozen=True)
class ClassReport:
    """Per-class slice of one serving/cluster run."""

    name: str
    deadline_s: float
    n_requests: int
    n_served: int
    n_shed: int
    n_unserved: int
    n_degraded: int
    n_cached: int
    mean_s: float
    p50_s: float
    p95_s: float
    p99_s: float
    slo_attainment: float
    accuracy: float = float("nan")

    @property
    def shed_rate(self) -> float:
        """Fraction of this class's requests rejected by admission."""
        return self.n_shed / self.n_requests if self.n_requests else 0.0


def per_class_reports(
    log: RequestLog, classes: ClassSet, labels: np.ndarray | None = None
) -> tuple[ClassReport, ...]:
    """One :class:`ClassReport` per class, reduced from the SoA log.

    SLO attainment counts a request as attained only when it completed
    within its class deadline — shed and stranded requests count
    against the class, exactly like the fleet-level SLO column.
    """
    codes = log.req_class
    done = log.done
    sojourn = log.sojourn_s
    labels = np.asarray(labels) if labels is not None else None
    reports = []
    for code, spec in enumerate(classes):
        mask = codes == code
        n = int(mask.sum())
        served = mask & done
        n_served = int(served.sum())
        cls_sojourn = sojourn[served]
        if n_served:
            p50, p95, p99 = latency_percentiles(cls_sojourn)
            mean_s = float(cls_sojourn.mean())
            attained = int((cls_sojourn <= spec.deadline_s).sum())
        else:
            p50 = p95 = p99 = mean_s = float("nan")
            attained = 0
        accuracy = float("nan")
        if labels is not None and n_served:
            accuracy = float((log.prediction[served] == labels[served]).mean())
        n_shed = int((log.route[mask] == ROUTE_SHED).sum())
        reports.append(
            ClassReport(
                name=spec.name,
                deadline_s=spec.deadline_s,
                n_requests=n,
                n_served=n_served,
                n_shed=n_shed,
                n_unserved=n - n_served - n_shed,
                n_degraded=int(log.degraded[mask].sum()),
                n_cached=int((log.route[mask] == ROUTE_CACHED).sum()),
                mean_s=mean_s,
                p50_s=p50,
                p95_s=p95,
                p99_s=p99,
                slo_attainment=attained / n if n else 0.0,
                accuracy=accuracy,
            )
        )
    return tuple(reports)


def class_table(runs, title: str = "") -> Table:
    """Render per-class rows for several runs side by side.

    ``runs`` is a sequence of ``(label, class_reports)`` pairs — e.g.
    the FIFO and priority runs of the tenants experiment.
    """
    table = Table(
        headers=[
            "run",
            "class",
            "reqs",
            "served",
            "shed",
            "p50 (ms)",
            "p95 (ms)",
            "p99 (ms)",
            "SLO",
            "acc",
        ],
        title=title,
    )
    for label, reports in runs:
        for r in reports:
            table.add_row(
                label,
                r.name,
                str(r.n_requests),
                str(r.n_served),
                f"{r.shed_rate:.1%}",
                "-" if np.isnan(r.p50_s) else f"{r.p50_s * 1e3:.2f}",
                "-" if np.isnan(r.p95_s) else f"{r.p95_s * 1e3:.2f}",
                "-" if np.isnan(r.p99_s) else f"{r.p99_s * 1e3:.2f}",
                f"{r.slo_attainment:.1%}",
                "-" if np.isnan(r.accuracy) else f"{r.accuracy:.1%}",
            )
    return table
