"""Model backends: real inference + a calibrated batch service-time model.

A backend couples two things the engine needs per micro-batch:

* **real predictions** — ``predict`` runs the actual model
  (:meth:`CBNet.predict <repro.core.cbnet.CBNet.predict>`,
  :meth:`BranchyLeNet.infer <repro.models.branchynet.BranchyLeNet.infer>`,
  ...), so the serving engine produces genuine labels, not placeholders.
  Every one of those model entry points routes through the compiled
  inference fast path (:mod:`repro.nn.fastpath`): the first batch of a
  given shape traces an :class:`~repro.nn.fastpath.InferencePlan`, and
  every subsequent batch — including the ragged final micro-batch —
  reuses its preallocated buffer arena, so the steady-state serving
  loop performs no per-batch allocations of conv column buffers.  Call
  :meth:`InferenceBackend.warmup` to pay the one-time trace before
  opening the doors to traffic;
* **virtual service time** — how long that batch occupies a worker on
  the simulated device, derived from the calibrated per-layer latency
  model in :mod:`repro.hw.latency`.  Per-batch time is
  ``overhead + gate + n·per_item + n_hard·per_hard_extra``: the fixed
  dispatch overhead is paid once per *batch* (the win dynamic batching
  exists to harvest), while compute scales with batch content.

Decoupling wall-clock from the virtual clock keeps serving experiments
deterministic and device-faithful: predictions are exact, timing follows
the Pi-4/GCI profiles the rest of the evaluation uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.device import DeviceProfile
from repro.hw.latency import branchynet_expected_latency, cbnet_latency, model_latency
from repro.serving.router import EntropyRouter, RouteDecision

__all__ = [
    "BatchTiming",
    "InferenceBackend",
    "CBNetBackend",
    "LeNetBackend",
    "BranchyNetBackend",
    "HybridBackend",
]


@dataclass(frozen=True)
class BatchTiming:
    """Affine batch service-time model (seconds).

    ``overhead_s`` is charged once per batch, ``gate_s`` once per batch
    when the backend performs dynamic routing (the control-flow /
    synchronization cost of the entropy gate), ``per_item_s`` per
    request, and ``per_hard_extra_s`` per entropy-flagged hard request.
    """

    overhead_s: float
    per_item_s: float
    gate_s: float = 0.0
    per_hard_extra_s: float = 0.0

    def batch_service_s(self, n: int, n_hard: int = 0) -> float:
        if n <= 0:
            raise ValueError(f"batch size must be positive, got {n}")
        if not 0 <= n_hard <= n:
            raise ValueError(f"n_hard must be in [0, {n}], got {n_hard}")
        return (
            self.overhead_s
            + self.gate_s
            + n * self.per_item_s
            + n_hard * self.per_hard_extra_s
        )


class InferenceBackend:
    """Base class: a named model with routing, timing, and prediction."""

    name: str = "backend"
    #: Per-sample input shape used by :meth:`warmup`.
    in_shape: tuple[int, ...] = (1, 28, 28)
    #: True for table-driven backends (:class:`repro.sim.OracleBackend`)
    #: whose ``route``/``predict`` take sample ids instead of pixels; the
    #: engines key the result cache on the ids and skip model warmup.
    oracle: bool = False

    def __init__(self, timing: BatchTiming, router: EntropyRouter | None = None):
        self.timing = timing
        self.router = router

    def warmup(
        self, batch_size: int = 256, sample_shape: tuple[int, ...] | None = None
    ) -> None:
        """Trace and cache the fastpath plans for ``batch_size`` up front.

        Runs a dummy batch through :meth:`route` (if routing) and
        :meth:`predict` — and, for routed backends, a second pass with an
        all-hard decision — so *both* sides of the entropy gate are
        compiled before live traffic, whatever the gate decides for real
        requests.  ``sample_shape`` defaults to :attr:`in_shape`;
        :meth:`Server.serve <repro.serving.engine.Server.serve>` passes
        the trace's actual per-sample shape before dispatch.  Memoized:
        repeat calls for an already-warmed (shape, size) are no-ops, and
        the cost is wall-clock only (the virtual clock never sees it).
        """
        shape = tuple(sample_shape) if sample_shape is not None else self.in_shape
        warmed: dict[tuple[int, ...], int] = self.__dict__.setdefault("_warmed", {})
        if warmed.get(shape, 0) >= batch_size:
            return
        dummy = np.zeros((batch_size, *shape), dtype=np.float32)
        decision = self.route(dummy)
        self.predict(dummy, decision)
        if decision is not None:
            # A uniform dummy batch routes entirely one way; force the
            # complementary all-hard split so the trunk / conversion path
            # is traced too.
            all_hard = RouteDecision(
                easy=np.zeros(batch_size, dtype=bool),
                entropy=decision.entropy,
                predictions=decision.predictions,
            )
            self.predict(dummy, all_hard)
        warmed[shape] = batch_size

    def route(self, images: np.ndarray) -> RouteDecision | None:
        """Split a batch into easy/hard, or ``None`` for static pipelines."""
        if self.router is None:
            return None
        return self.router.split(images)

    def batch_service_s(self, n: int, n_hard: int = 0) -> float:
        """Virtual seconds one worker is occupied by this batch."""
        return self.timing.batch_service_s(n, n_hard)

    def predict(
        self, images: np.ndarray, decision: RouteDecision | None = None
    ) -> np.ndarray:
        """Real model predictions for one batch.

        ``decision`` is the batch's routing outcome when the engine
        already ran :meth:`route`; dynamic backends reuse its branch
        predictions instead of repeating the shared-stem forward pass.
        """
        raise NotImplementedError

    def mean_service_s(self, exit_rate: float = 1.0, batch_size: int = 1) -> float:
        """Expected per-request service time at a given easy fraction —
        the capacity number load scenarios are sized against."""
        n = max(1, int(batch_size))
        n_hard = round(n * (1.0 - exit_rate)) if self.router is not None else 0
        return self.batch_service_s(n, n_hard) / n


class CBNetBackend(InferenceBackend):
    """Static CBNet pipeline: converting AE → lightweight classifier.

    No dynamic control flow, so no gate cost and a constant per-item
    time — the property that keeps CBNet's tail close to its mean.
    """

    name = "cbnet"

    def __init__(self, cbnet, device: DeviceProfile) -> None:
        lat = cbnet_latency(cbnet, device)
        super().__init__(
            BatchTiming(
                overhead_s=device.inference_overhead_s,
                per_item_s=lat.total - device.inference_overhead_s,
            )
        )
        self.cbnet = cbnet

    def predict(
        self, images: np.ndarray, decision: RouteDecision | None = None
    ) -> np.ndarray:
        return self.cbnet.predict(images)


class LeNetBackend(InferenceBackend):
    """Plain LeNet baseline (static, no early exit, no conversion)."""

    name = "lenet"

    def __init__(self, lenet, device: DeviceProfile) -> None:
        lat = model_latency(lenet, device)
        super().__init__(
            BatchTiming(
                overhead_s=device.inference_overhead_s,
                per_item_s=lat - device.inference_overhead_s,
            )
        )
        self.lenet = lenet

    def predict(
        self, images: np.ndarray, decision: RouteDecision | None = None
    ) -> np.ndarray:
        return self.lenet.predict(images)


class BranchyNetBackend(InferenceBackend):
    """Early-exit BranchyNet behind the serving-layer entropy router.

    Every batch pays stem + branch + one gate decision; the hard
    sub-batch additionally pays the trunk (full-exit path).  Service
    time is therefore *data-dependent* — the bimodality that fattens
    BranchyNet's tail under load.
    """

    name = "branchynet"

    def __init__(
        self, branchynet, device: DeviceProfile, threshold: float | None = None
    ) -> None:
        router = EntropyRouter(branchynet, threshold)
        # exit_rate only shapes BranchyLatency.expected; the path costs
        # used here are exit-rate-independent.
        lat = branchynet_expected_latency(branchynet, device, exit_rate=1.0)
        base = device.inference_overhead_s + device.sync_overhead_s
        super().__init__(
            BatchTiming(
                overhead_s=device.inference_overhead_s,
                gate_s=device.sync_overhead_s,
                per_item_s=lat.early_path - base,
                per_hard_extra_s=lat.full_path - lat.early_path,
            ),
            router=router,
        )
        self.branchynet = branchynet

    def predict(
        self, images: np.ndarray, decision: RouteDecision | None = None
    ) -> np.ndarray:
        if decision is None or decision.predictions is None:
            return self.branchynet.infer(
                images, threshold=self.router.threshold
            ).predictions
        # Reuse the router's branch-exit labels; only the hard sub-batch
        # pays the full stem + trunk path.  An all-hard batch runs whole
        # (no gather copy); an all-easy batch never touches the trunk.
        preds = decision.predictions.copy()
        hard = decision.hard_indices
        if hard.size == len(preds):
            preds = self.branchynet.infer(images, threshold=-1.0).predictions
        elif hard.size:
            preds[hard] = self.branchynet.infer(
                images[hard], threshold=-1.0
            ).predictions
        return preds


class HybridBackend(InferenceBackend):
    """Router + CBNet as the hard path: easy requests take BranchyNet's
    branch exit; entropy-flagged hard requests are *converted*
    (autoencoder hard→easy) and re-classified instead of running the
    trunk — the serving-layer composition of the paper's two ideas.
    """

    name = "hybrid"

    def __init__(
        self, cbnet, branchynet, device: DeviceProfile, threshold: float | None = None
    ) -> None:
        router = EntropyRouter(branchynet, threshold)
        blat = branchynet_expected_latency(branchynet, device, exit_rate=1.0)
        base = device.inference_overhead_s + device.sync_overhead_s
        clat = cbnet_latency(cbnet, device)
        super().__init__(
            BatchTiming(
                overhead_s=device.inference_overhead_s,
                gate_s=device.sync_overhead_s,
                per_item_s=blat.early_path - base,
                per_hard_extra_s=clat.total - device.inference_overhead_s,
            ),
            router=router,
        )
        self.cbnet = cbnet
        self.branchynet = branchynet

    def predict(
        self, images: np.ndarray, decision: RouteDecision | None = None
    ) -> np.ndarray:
        if decision is None or decision.predictions is None:
            decision = self.router.split(images)
        # Branch-exit predictions for the easy sub-batch; the hard one is
        # converted (AE hard→easy) and re-classified.  All-hard batches
        # convert whole instead of gathering into a same-size copy.
        preds = decision.predictions.copy()
        hard = decision.hard_indices
        if hard.size == len(preds):
            preds = self.cbnet.predict(images)
        elif hard.size:
            preds[hard] = self.cbnet.predict(images[hard])
        return preds
