"""Priority-aware micro-batching for multi-tenant serving.

:class:`PriorityBatcher` is the scheduling half of the request-class
story (:mod:`repro.serving.classes`).  It keeps one FIFO queue per
class and differs from the single-queue
:class:`~repro.serving.batcher.MicroBatcher` in three ways:

* **unbounded pending** — requests queue here (not in an implicit
  "worker is busy" limbo), so under overload the queue genuinely holds
  more than one batch and flush-time ordering matters;
* **priority-first flushes** — each flush takes up to
  ``max_batch_size`` requests, filling from the most urgent class
  first (FIFO within a class) and *retaining* the leftover.  This is
  what makes the priority-ordering invariant hold by construction: a
  batch-class request can only ride a flush after every pending
  interactive request boarded;
* **per-class wait caps** — each class has its own deadline trigger
  (``RequestClass.max_wait_s``).  A tight interactive cap *preempts a
  forming batch*: the batcher may be sitting on a half-formed batch of
  batch-class work whose deadline is far out, and one interactive
  arrival pulls the next flush to ``now + interactive_wait``, boarding
  immediately ahead of the work that was queued first.

The batcher stays clock-agnostic (callers pass ``now``), exactly like
the FIFO micro-batcher, so oracle and live engines drive it
identically.
"""

from __future__ import annotations

import math
from collections import deque

from repro.serving.classes import ClassSet

__all__ = ["PriorityBatcher"]


class PriorityBatcher:
    """Per-class FIFO queues with priority-first, size-capped flushes.

    Parameters
    ----------
    classes:
        The run's :class:`~repro.serving.classes.ClassSet`; its
        ``by_priority`` order is the flush fill order.
    max_batch_size:
        Cap on requests per flush (the micro-batch size).
    max_wait_s:
        Default deadline trigger, used for classes whose
        ``max_wait_s`` is ``None``.
    ordering:
        ``"priority"`` (the point of this class) or ``"fifo"`` — the
        control arm for scheduler comparisons: identical queueing
        structure, but flushes fill in global enqueue order and every
        class shares the default wait cap (class-blind), so the *only*
        difference between the two arms is the scheduling discipline.
    """

    def __init__(
        self,
        classes: ClassSet,
        max_batch_size: int = 32,
        max_wait_s: float = 0.005,
        ordering: str = "priority",
    ) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait_s < 0:
            raise ValueError(f"max_wait_s must be non-negative, got {max_wait_s}")
        if ordering not in ("priority", "fifo"):
            raise ValueError(f"unknown ordering {ordering!r}")
        self.classes = classes
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = float(max_wait_s)
        self.ordering = ordering
        if ordering == "fifo":
            self._wait = (self.max_wait_s,) * len(classes)
        else:
            self._wait = classes.wait_caps(self.max_wait_s)
        # One FIFO of (req_id, enqueue_s) per class code.
        self._queues: tuple[deque, ...] = tuple(deque() for _ in classes)
        self._n_pending = 0

    def __len__(self) -> int:
        return self._n_pending

    def __bool__(self) -> bool:
        return self._n_pending > 0

    def queue_depth(self, cls: int) -> int:
        """Pending requests of one class."""
        return len(self._queues[cls])

    @property
    def deadline_s(self) -> float:
        """Earliest deadline trigger across classes (``inf`` if empty).

        Each non-empty class fires at ``oldest_enqueue + class_wait``;
        the batcher's next deadline is the minimum — which is how a
        fresh interactive arrival with a tight wait cap preempts a
        forming batch of lower-priority work.
        """
        deadline = math.inf
        for cls, q in enumerate(self._queues):
            if q:
                deadline = min(deadline, q[0][1] + self._wait[cls])
        return deadline

    def add(self, req_id: int, now: float, cls: int = 0) -> None:
        """Enqueue one request of class ``cls`` at time ``now``."""
        self._queues[cls].append((req_id, now))
        self._n_pending += 1

    def should_flush(self, now: float) -> bool:
        """True when a full batch is pending or any class deadline hit."""
        if not self._n_pending:
            return False
        return self._n_pending >= self.max_batch_size or now >= self.deadline_s

    def flush(self) -> list[int]:
        """Form one batch: up to ``max_batch_size`` ids, priority first.

        Fills from the most urgent class (FIFO within each class) and
        leaves the rest queued — under overload lower-priority classes
        wait for a later flush.  In ``"fifo"`` ordering the fill is
        global enqueue order instead (class-blind head-of-line).
        """
        if self.ordering == "fifo":
            return self._flush_fifo()
        batch: list[int] = []
        room = self.max_batch_size
        for cls in self.classes.by_priority:
            q = self._queues[cls]
            while q and room:
                batch.append(q.popleft()[0])
                room -= 1
            if not room:
                break
        self._n_pending -= len(batch)
        return batch

    def _flush_fifo(self) -> list[int]:
        """Fill one batch in global enqueue order (the control arm)."""
        batch: list[int] = []
        for _ in range(min(self.max_batch_size, self._n_pending)):
            # Oldest head across class queues; ties break on req_id so
            # same-instant arrivals keep submission order.
            cls = min(
                (c for c, q in enumerate(self._queues) if q),
                key=lambda c: self._queues[c][0][::-1],
            )
            batch.append(self._queues[cls].popleft()[0])
        self._n_pending -= len(batch)
        return batch

    def drain(self) -> list[int]:
        """Return and clear *everything* pending, in enqueue order.

        Used by crash cancellation: a dying replica must surrender all
        queued requests for re-dispatch, not just one batch's worth.
        """
        items = [item for q in self._queues for item in q]
        items.sort(key=lambda it: (it[1], it[0]))
        for q in self._queues:
            q.clear()
        self._n_pending = 0
        return [req_id for req_id, _ in items]
