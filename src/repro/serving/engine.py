"""The serving engine: queue → micro-batcher → worker pool → report.

:class:`Server` turns the passive M/D/1 analysis of
:mod:`repro.hw.serving` into an executable engine.  It replays an
arrival trace against a model backend on a *virtual clock*:

1. each arriving request is checked against the LRU result cache — hits
   bypass the queue entirely (live backends hash the image; oracle
   backends key on the sample id);
2. misses enter the :class:`~repro.serving.batcher.MicroBatcher`, which
   flushes on a size or deadline trigger;
3. a flushed batch is dispatched to the earliest-free worker of a
   ``n_workers``-server pool; dynamic backends first route the batch
   into easy/hard sub-batches (hard → full-exit path);
4. service time follows the backend's calibrated device timing model,
   while predictions come from the backend — real model inference
   (fanned out over :func:`repro.parallel.pool.parallel_map` once the
   timeline is fixed), or precomputed-table lookups when the backend is
   a :class:`repro.sim.OracleBackend`.

Bookkeeping rides the structure-of-arrays
:class:`~repro.sim.records.RequestLog` (one NumPy column per outcome
field — including the resilience columns ``retries``/``timed_out``/
``hedged`` written by the fleet engine under :mod:`repro.faults`), so
the hot loop is heap pops plus array writes and the report is
vectorized reductions.  Everything observable lands in a
:class:`ServingReport` (throughput, sojourn percentiles, cache hit rate,
batch-size histogram, accuracy) that renders through
:mod:`repro.eval.tables` and feeds the combined experiment report.

A single ``Server`` never injects faults itself — degraded-mode
behaviour (slowdowns, partitions, flaky batches, timeouts, hedging,
circuit breakers) lives one layer up in :mod:`repro.cluster` +
:mod:`repro.faults`, where there are replicas to fail over between.
"""

from __future__ import annotations

import functools
import heapq
import math
from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.eval.metrics import latency_percentiles
from repro.eval.tables import Table
from repro.obs.prof import current_profiler
from repro.parallel.pool import parallel_map
from repro.serving.backends import InferenceBackend
from repro.serving.batcher import MicroBatcher
from repro.serving.cache import LRUResultCache
from repro.serving.classes import (
    DEFAULT_CLASSES,
    ClassReport,
    ClassSet,
    per_class_reports,
)
from repro.serving.priority import PriorityBatcher
from repro.serving.request import Request
from repro.sim.core import request_keys, validate_trace
from repro.sim.records import (
    ROUTE_CACHED,
    ROUTE_EASY,
    ROUTE_HARD,
    RequestLog,
)

__all__ = ["Server", "ServingReport", "comparison_table"]


def _predict_batch(backend, images, task):
    """Module-level map target (picklable for the process pool).

    ``backend`` and the full ``images`` array travel once per chunk via
    the partial; per-task payloads are just (indices, decision).
    """
    indices, decision = task
    return backend.predict(images[indices], decision)


@dataclass(frozen=True)
class ServingReport:
    """Everything one serving run produced, ready for tables and asserts."""

    backend: str
    scenario: str
    n_requests: int
    n_workers: int
    duration_s: float  # makespan: first arrival → last completion
    throughput_rps: float
    arrival_rate_hz: float
    mean_s: float
    p50_s: float
    p95_s: float
    p99_s: float
    max_s: float
    utilization: float  # busy fraction of the worker pool
    mean_batch_size: float
    batch_histogram: dict[int, int] = field(repr=False)
    n_easy: int = 0
    n_hard: int = 0
    n_cached: int = 0
    cache_hit_rate: float = 0.0
    accuracy: float = float("nan")
    #: Per-request-class slices (empty for single-class runs).
    class_reports: tuple[ClassReport, ...] = ()

    def summary(self) -> str:
        return (
            f"[{self.backend}/{self.scenario}] {self.throughput_rps:.0f} req/s | "
            f"p50 {self.p50_s * 1e3:.2f} ms | p99 {self.p99_s * 1e3:.2f} ms | "
            f"batch {self.mean_batch_size:.1f} | cache {self.cache_hit_rate:.0%} | "
            f"util {self.utilization:.0%}"
        )

    @property
    def hard_fraction(self) -> float:
        routed = self.n_easy + self.n_hard
        return self.n_hard / routed if routed else 0.0


def comparison_table(reports: list[ServingReport], title: str = "") -> Table:
    """Render several serving runs side by side (one row per backend)."""
    table = Table(
        headers=[
            "backend",
            "req/s",
            "p50 (ms)",
            "p95 (ms)",
            "p99 (ms)",
            "batch",
            "cache",
            "hard",
            "util",
            "acc",
        ],
        title=title,
    )
    for r in reports:
        table.add_row(
            r.backend,
            f"{r.throughput_rps:.0f}",
            f"{r.p50_s * 1e3:.2f}",
            f"{r.p95_s * 1e3:.2f}",
            f"{r.p99_s * 1e3:.2f}",
            f"{r.mean_batch_size:.1f}",
            f"{r.cache_hit_rate:.0%}",
            f"{r.hard_fraction:.0%}",
            f"{r.utilization:.0%}",
            "-" if np.isnan(r.accuracy) else f"{r.accuracy:.1%}",
        )
    return table


class Server:
    """Batched inference server over a virtual clock.

    Parameters
    ----------
    backend:
        An :class:`~repro.serving.backends.InferenceBackend` (model +
        device timing), or a :class:`repro.sim.OracleBackend` wrapping
        one — in which case the request stream carries sample ids.
    max_batch_size, max_wait_s:
        Micro-batcher triggers (see :class:`~repro.serving.batcher.MicroBatcher`).
        ``max_wait_s=0`` disables batching (pure FIFO).
    n_workers:
        Parallel model replicas; a flushed batch goes to the
        earliest-free worker.  Live predictions are likewise fanned out
        over a process pool (oracle lookups stay serial — cheaper than
        pickling).
    cache_capacity:
        LRU result-cache entries; ``0`` disables caching.
    cache_lookup_s:
        Virtual cost of answering from the cache (hash + dictionary hit).
    classes:
        Optional :class:`~repro.serving.classes.ClassSet` enabling
        multi-tenant mode: ``serve*`` then requires per-request class
        codes, requests queue in a worker-gated
        :class:`~repro.serving.priority.PriorityBatcher`, and the
        report carries per-class slices.  ``None`` (default) keeps the
        single-class engine unchanged.
    scheduler:
        Multi-tenant flush discipline: ``"priority"`` (urgent classes
        board first, per-class wait caps) or ``"fifo"`` (class-blind
        control arm).  Ignored when ``classes`` is ``None``.
    obs:
        Optional :class:`~repro.obs.observer.Observer`.  When set, each
        dispatched batch is recorded as a span (worker index as the
        replica lane) and the finished run is finalized into spans,
        metrics, and SLO burn rates.  Observers are single-use — pass a
        fresh one per ``serve*`` call.  ``None`` (default) records
        nothing and costs one ``is None`` test per batch.
    prof:
        Optional :class:`~repro.obs.prof.PhaseProfiler` attributing
        **wall-clock** (host CPU) time to engine phases: warmup,
        event_loop, ingest, dispatch, inference, report.  ``None``
        falls back to the process-global profiler (``REPRO_PROF=1``),
        else profiling is off.
    """

    def __init__(
        self,
        backend: InferenceBackend,
        max_batch_size: int = 32,
        max_wait_s: float = 0.005,
        n_workers: int = 1,
        cache_capacity: int = 0,
        cache_lookup_s: float = 2e-5,
        classes: ClassSet | None = None,
        scheduler: str = "priority",
        obs=None,
        prof=None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if cache_lookup_s < 0:
            raise ValueError(f"cache_lookup_s must be >= 0, got {cache_lookup_s}")
        if scheduler not in ("priority", "fifo"):
            raise ValueError(f"unknown scheduler {scheduler!r}")
        # Fail fast on bad batcher/cache parameters (their ctors validate).
        MicroBatcher(max_batch_size, max_wait_s)
        LRUResultCache(cache_capacity)
        self.backend = backend
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = float(max_wait_s)
        self.n_workers = int(n_workers)
        self.cache_capacity = int(cache_capacity)
        self.cache_lookup_s = float(cache_lookup_s)
        self.classes = classes
        self.scheduler = scheduler
        self.obs = obs
        # Wall-clock phase attribution: an explicit profiler wins, else
        # the process-global one (REPRO_PROF=1), else disabled.
        self.prof = prof if prof is not None else current_profiler()

    # ------------------------------------------------------------------ #
    # serving loop
    # ------------------------------------------------------------------ #
    def serve(
        self,
        images: np.ndarray,
        arrival_s: np.ndarray,
        labels: np.ndarray | None = None,
        scenario: str = "trace",
        request_classes: np.ndarray | None = None,
    ) -> ServingReport:
        """Replay one arrival trace end to end and report.

        ``images[i]`` arrives at ``arrival_s[i]`` (non-decreasing).
        ``labels`` (optional) adds end-to-end accuracy to the report —
        predictions are the backend's genuine outputs (real inference,
        or the oracle table built from it), so this is a served-traffic
        accuracy, not a placeholder.  ``request_classes`` (multi-tenant
        mode) gives each request its class code.
        """
        report, _ = self.serve_log(images, arrival_s, labels, scenario, request_classes)
        return report

    def serve_detailed(
        self,
        images: np.ndarray,
        arrival_s: np.ndarray,
        labels: np.ndarray | None = None,
        scenario: str = "trace",
        request_classes: np.ndarray | None = None,
    ) -> tuple[ServingReport, list[Request]]:
        """:meth:`serve`, additionally returning per-request records.

        The request list carries completion time, route, prediction, and
        batch size per request — what a composing tier (the edge side of
        :mod:`repro.offload`) needs to continue each request's timeline
        after the server answered.  Prefer :meth:`serve_log` when the
        array view suffices — it skips materializing request objects.
        """
        report, log = self.serve_log(images, arrival_s, labels, scenario, request_classes)
        return report, log.to_requests()

    def _resolve_classes(
        self, request_classes, n: int
    ) -> tuple[ClassSet | None, np.ndarray | None]:
        """Pair up the ctor class set with the per-request codes.

        ``classes`` without codes is an error (every request needs a
        class); codes without ``classes`` default to
        :data:`~repro.serving.classes.DEFAULT_CLASSES`.
        """
        classes = self.classes
        if request_classes is None:
            if classes is not None:
                raise ValueError(
                    "Server(classes=...) requires request_classes in serve*()"
                )
            return None, None
        if classes is None:
            classes = DEFAULT_CLASSES
        return classes, classes.validate_codes(request_classes, n)

    def serve_log(
        self,
        images: np.ndarray,
        arrival_s: np.ndarray,
        labels: np.ndarray | None = None,
        scenario: str = "trace",
        request_classes: np.ndarray | None = None,
    ) -> tuple[ServingReport, RequestLog]:
        """:meth:`serve`, additionally returning the SoA request log."""
        images, arrival_s = validate_trace(images, arrival_s)
        classes, codes = self._resolve_classes(request_classes, arrival_s.shape[0])
        oracle = self.backend.oracle
        prof = self.prof
        if prof is not None:
            prof.start("serve")
            prof.start("warmup")
        if not oracle:
            # Pay the fastpath plan compilation for the routing path
            # (and, with n_workers == 1, the prediction path) before
            # dispatch.  Pooled workers receive the backend without
            # cached plans (Module.__getstate__) and retrace on their
            # first batch.  Wall-clock only — the virtual clock never
            # sees it — and a no-op when this shape is already warmed.
            self.backend.warmup(
                min(self.max_batch_size, images.shape[0]),
                sample_shape=images.shape[1:],
            )
        if prof is not None:
            prof.stop()  # warmup

        log = RequestLog(arrival_s)
        if codes is not None:
            log.req_class[:] = codes
        cache = LRUResultCache(self.cache_capacity)
        workers = [0.0] * self.n_workers
        batches: list[tuple[list[int], object]] = []  # (indices, RouteDecision|None)
        busy_s = 0.0
        inserts: list[tuple[float, int, object]] = []  # completion-time heap

        keys = request_keys(images, oracle) if self.cache_capacity > 0 else None
        completion = log.completion_s
        dispatch_s = log.dispatch_s
        route = log.route
        requested_route = log.requested_route
        batch_size = log.batch_size
        source_id = log.source_id

        obs = self.obs

        def dispatch(indices: list[int], flush_s: float) -> None:
            nonlocal busy_s
            if prof is not None:
                prof.start("dispatch")
            # One list→array conversion reused by every fancy-index op.
            idx = np.asarray(indices, dtype=np.intp)
            decision = self.backend.route(images[idx])
            n_hard = decision.n_hard if decision is not None else 0
            service = self.backend.batch_service_s(len(indices), n_hard)
            w = min(range(self.n_workers), key=workers.__getitem__)
            start = max(flush_s, workers[w])
            done = start + service
            workers[w] = done
            busy_s += service
            if obs is not None:
                obs.on_batch(start, done, w, len(indices))
            completion[idx] = done
            dispatch_s[idx] = start
            batch_size[idx] = len(indices)
            if decision is not None:
                route[idx] = np.where(decision.easy, ROUTE_EASY, ROUTE_HARD)
            # No admission control on the single server: the served
            # route IS the requested route.
            requested_route[idx] = route[idx]
            if keys is not None:
                # Results become visible at their batch's completion
                # time; ties break on the request index so insertion
                # order is identical whatever the key type (pixel hash
                # or oracle sample id).
                for i in indices:
                    heapq.heappush(inserts, (done, i, keys[i]))
            batches.append((idx, decision))
            if prof is not None:
                prof.stop()  # dispatch

        def cache_hit(i: int, now: float) -> bool:
            """Settle visible results, then try to answer ``i`` from cache."""
            while inserts and inserts[0][0] <= now:
                _, src, key = heapq.heappop(inserts)
                cache.put(key, src)
            hit = cache.get(keys[i])
            if hit is None:
                return False
            route[i] = ROUTE_CACHED
            requested_route[i] = ROUTE_CACHED
            source_id[i] = int(hit)
            dispatch_s[i] = now  # answered on arrival — never queued
            completion[i] = now + self.cache_lookup_s
            return True

        if prof is not None:
            prof.start("event_loop")
        if classes is not None:
            self._pump_classes(
                arrival_s, codes, classes, keys, cache_hit, dispatch,
                worker_free=lambda: min(workers),
            )
        else:
            batcher = MicroBatcher(self.max_batch_size, self.max_wait_s)
            for i, now in enumerate(arrival_s.tolist()):
                # Deadline-triggered flushes that fire before this arrival.
                while batcher and batcher.deadline_s <= now:
                    flush_at = batcher.deadline_s
                    dispatch(batcher.flush(), flush_at)
                if prof is not None:
                    prof.start("ingest")
                    hit = keys is not None and cache_hit(i, now)
                    if not hit:
                        batcher.add(i, now)
                    prof.stop()  # ingest
                    if hit:
                        continue
                else:
                    if keys is not None and cache_hit(i, now):
                        continue
                    batcher.add(i, now)
                if batcher.should_flush(now):
                    dispatch(batcher.flush(), now)
            while batcher:
                flush_at = batcher.deadline_s
                dispatch(batcher.flush(), flush_at)
        if prof is not None:
            prof.stop()  # event_loop
            prof.start("inference")

        self._fill_predictions(log, batches, images)
        if prof is not None:
            prof.stop()  # inference
            prof.start("report")
        report = self._report(
            log, batches, arrival_s, labels, cache, busy_s, scenario, classes
        )
        if obs is not None:
            obs.finalize(log, classes=classes)
        if prof is not None:
            prof.stop()  # report
            prof.stop()  # serve
        return report, log

    def _pump_classes(
        self, arrival_s, codes, classes, keys, cache_hit, dispatch, worker_free
    ) -> None:
        """Multi-tenant event loop: worker-gated priority batching.

        Unlike the single-class loop — where every flush hands its batch
        straight to a worker queue — dispatch here is *gated on worker
        availability*: the queue lives in the batcher, where scheduling
        order matters.  A flush fires at the earliest time a worker is
        free AND a trigger holds:

        * ``pending >= max_batch_size`` → flush the moment a worker
          frees (``worker_free_s``);
        * otherwise → wait for the earliest per-class deadline, or the
          worker if it frees later (``max(deadline_s, worker_free_s)``).

        Under overload pending grows beyond one batch and the
        scheduler's fill order (priority vs FIFO) decides who boards —
        which is the entire point of multi-tenant mode.
        """
        batcher = PriorityBatcher(
            classes, self.max_batch_size, self.max_wait_s, ordering=self.scheduler
        )

        def next_flush_s() -> float:
            free = worker_free()
            if len(batcher) >= batcher.max_batch_size:
                return free
            return max(batcher.deadline_s, free)

        prof = self.prof
        code_list = codes.tolist()
        for i, now in enumerate(arrival_s.tolist()):
            while batcher:
                t = next_flush_s()
                if t > now:
                    break
                dispatch(batcher.flush(), t)
            if prof is not None:
                prof.start("ingest")
                hit = keys is not None and cache_hit(i, now)
                if not hit:
                    batcher.add(i, now, cls=code_list[i])
                prof.stop()  # ingest
                if hit:
                    continue
            else:
                if keys is not None and cache_hit(i, now):
                    continue
                batcher.add(i, now, cls=code_list[i])
            while batcher:
                t = next_flush_s()
                if t > now:
                    break
                # The trigger completed only with this arrival: the
                # flush cannot predate the request it includes.
                dispatch(batcher.flush(), max(t, now))
        while batcher:
            # Pin the flush time *before* flushing — next_flush_s reads
            # the pending set, which flush() consumes.
            t = next_flush_s()
            dispatch(batcher.flush(), t)

    # ------------------------------------------------------------------ #
    # inference over the worker pool
    # ------------------------------------------------------------------ #
    def _fill_predictions(self, log: RequestLog, batches, images) -> None:
        """Run the backend over every dispatched batch.

        The virtual timeline is already fixed, so batches are
        embarrassingly parallel — live backends fan out over the
        fork-based process pool with ordered gather (one chunk per
        worker keeps the model weights from being re-pickled per batch).
        Oracle backends answer from their table; pickling a pool would
        cost more than the lookups, so they stay serial.  Each batch
        carries its RouteDecision from dispatch, so dynamic backends
        reuse the routing pass instead of repeating it.
        """
        if self.backend.oracle or self.n_workers == 1:
            preds_per_batch = [
                self.backend.predict(images[indices], decision)
                for indices, decision in batches
            ]
        else:
            chunksize = max(1, math.ceil(len(batches) / self.n_workers))
            preds_per_batch = parallel_map(
                functools.partial(_predict_batch, self.backend, images),
                batches,
                self.n_workers,
                chunksize=chunksize,
            )
        prediction = log.prediction
        for (indices, _), preds in zip(batches, preds_per_batch):
            prediction[indices] = preds
        log.fill_cached_predictions()

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def _report(
        self,
        log: RequestLog,
        batches,
        arrival_s,
        labels,
        cache,
        busy_s,
        scenario,
        classes: ClassSet | None = None,
    ) -> ServingReport:
        sojourn = log.sojourn_s
        makespan = float(log.completion_s.max() - arrival_s[0])
        span = float(arrival_s[-1] - arrival_s[0])
        histogram = dict(sorted(Counter(len(indices) for indices, _ in batches).items()))
        n_batched = sum(k * c for k, c in histogram.items())
        mean_batch = n_batched / len(batches) if batches else 0.0
        accuracy = float("nan")
        if labels is not None:
            accuracy = float((log.prediction == np.asarray(labels)).mean())
        p50, p95, p99 = latency_percentiles(sojourn)
        n = len(log)
        return ServingReport(
            backend=self.backend.name,
            scenario=scenario,
            n_requests=n,
            n_workers=self.n_workers,
            duration_s=makespan,
            throughput_rps=n / makespan if makespan > 0 else float("inf"),
            arrival_rate_hz=(n - 1) / span if span > 0 else float("inf"),
            mean_s=float(sojourn.mean()),
            p50_s=p50,
            p95_s=p95,
            p99_s=p99,
            max_s=float(sojourn.max()),
            utilization=busy_s / (self.n_workers * makespan) if makespan > 0 else 0.0,
            mean_batch_size=mean_batch,
            batch_histogram=histogram,
            n_easy=log.route_count(ROUTE_EASY),
            n_hard=log.route_count(ROUTE_HARD),
            n_cached=log.route_count(ROUTE_CACHED),
            cache_hit_rate=cache.hit_rate,
            accuracy=accuracy,
            class_reports=(
                per_class_reports(log, classes, labels) if classes is not None else ()
            ),
        )
