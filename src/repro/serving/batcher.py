"""Dynamic micro-batcher: size- and deadline-triggered flushes.

Batching amortizes the per-inference dispatch overhead (one
``inference_overhead_s`` per *batch* instead of per request), but holding
requests to fill a batch adds queueing delay.  The micro-batcher bounds
that delay: a batch flushes the moment it reaches ``max_batch_size`` OR
the moment its oldest request has waited ``max_wait_s`` — whichever
comes first.  This is the standard dynamic-batching policy of inference
servers (Triton, TF-Serving), implemented here over a virtual clock so
serving experiments stay deterministic.

:func:`repro.parallel.batcher.plan_batches` is the pure offline
counterpart: it computes the same grouping for a whole arrival trace at
once (assuming an always-ready server) and serves as the oracle in the
micro-batcher's tests.
"""

from __future__ import annotations

import math

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Accumulate request ids until a size or deadline trigger fires.

    The batcher is clock-agnostic: callers pass ``now`` explicitly, so it
    works identically on a simulated clock (the serving engine) and on
    wall time.

    Parameters
    ----------
    max_batch_size:
        Flush as soon as this many requests are pending (size trigger).
    max_wait_s:
        Flush as soon as the oldest pending request has waited this long
        (deadline trigger).  ``0`` degenerates to unbatched FIFO serving:
        every request flushes immediately.
    """

    def __init__(self, max_batch_size: int = 32, max_wait_s: float = 0.005) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait_s < 0:
            raise ValueError(f"max_wait_s must be non-negative, got {max_wait_s}")
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = float(max_wait_s)
        self._pending: list[int] = []
        self._oldest_s = math.inf

    def __len__(self) -> int:
        return len(self._pending)

    def __bool__(self) -> bool:
        return bool(self._pending)

    @property
    def deadline_s(self) -> float:
        """Virtual time at which the deadline trigger fires (``inf`` when
        empty — there is nothing to flush)."""
        if not self._pending:
            return math.inf
        return self._oldest_s + self.max_wait_s

    def add(self, req_id: int, now: float, cls: int = 0) -> None:
        """Admit one request at time ``now``.

        ``cls`` (the request-class code) is accepted for interface
        parity with :class:`~repro.serving.priority.PriorityBatcher`
        and ignored — FIFO batching is class-blind.
        """
        del cls
        if len(self._pending) >= self.max_batch_size:
            raise RuntimeError(
                "batcher is full — flush() must run before the next add()"
            )
        if not self._pending:
            self._oldest_s = now
        self._pending.append(req_id)

    def should_flush(self, now: float) -> bool:
        """True when either trigger has fired at time ``now``."""
        if not self._pending:
            return False
        return len(self._pending) >= self.max_batch_size or now >= self.deadline_s

    def flush(self) -> list[int]:
        """Return and clear the pending batch (caller decides *when*)."""
        batch, self._pending = self._pending, []
        self._oldest_s = math.inf
        return batch

    def drain(self) -> list[int]:
        """Return and clear everything pending (== ``flush`` here;
        :class:`~repro.serving.priority.PriorityBatcher` distinguishes
        the two)."""
        return self.flush()
