"""`repro.serving` — batched inference serving engine.

Turns the passive queueing analysis of :mod:`repro.hw.serving` into an
executable serving path: arrival generators feed a request queue, a
dynamic micro-batcher flushes on size/deadline triggers, a worker-pool
dispatcher runs real CBNet / BranchyNet / LeNet inference with
device-calibrated service times, an LRU cache answers repeated images,
and an entropy router sends hard inputs down the full-exit path.

Quick tour::

    from repro.serving import Server, CBNetBackend, poisson_arrivals
    backend = Server(CBNetBackend(cbnet, device), max_batch_size=16,
                     max_wait_s=0.004, cache_capacity=512)
    report = backend.serve(images, poisson_arrivals(300.0, len(images), rng=0))
    print(report.summary())
"""

from repro.serving.arrivals import (
    bursty_arrivals,
    class_mix,
    constant_arrivals,
    diurnal_arrivals,
    diurnal_class_mix,
    flash_crowd_arrivals,
    poisson_arrivals,
    trace_arrivals,
    zipf_popularity,
)
from repro.serving.backends import (
    BatchTiming,
    BranchyNetBackend,
    CBNetBackend,
    HybridBackend,
    InferenceBackend,
    LeNetBackend,
)
from repro.serving.batcher import MicroBatcher
from repro.serving.cache import LRUResultCache, image_key
from repro.serving.classes import (
    DEFAULT_CLASSES,
    ClassReport,
    ClassSet,
    RequestClass,
    class_table,
    default_classes,
    per_class_reports,
)
from repro.serving.engine import Server, ServingReport, comparison_table
from repro.serving.priority import PriorityBatcher
from repro.serving.request import Request, Route
from repro.serving.router import EntropyRouter, RouteDecision

__all__ = [
    "Server",
    "ServingReport",
    "comparison_table",
    "Request",
    "Route",
    "RequestClass",
    "ClassSet",
    "ClassReport",
    "DEFAULT_CLASSES",
    "default_classes",
    "per_class_reports",
    "class_table",
    "MicroBatcher",
    "PriorityBatcher",
    "LRUResultCache",
    "image_key",
    "EntropyRouter",
    "RouteDecision",
    "InferenceBackend",
    "BatchTiming",
    "CBNetBackend",
    "LeNetBackend",
    "BranchyNetBackend",
    "HybridBackend",
    "poisson_arrivals",
    "constant_arrivals",
    "bursty_arrivals",
    "diurnal_arrivals",
    "flash_crowd_arrivals",
    "trace_arrivals",
    "zipf_popularity",
    "class_mix",
    "diurnal_class_mix",
]
