"""Arrival-time and popularity generators for serving workloads.

The engine consumes a sorted array of arrival times (seconds); these
helpers generate the three canonical load shapes the benchmarks use —
steady Poisson traffic, bursty on/off-modulated Poisson traffic, and a
finite overload wave — plus trace-driven replay of recorded timestamps
and a Zipf popularity sampler that turns a small image set into a
realistic repeated-request stream (the lever that makes the result cache
earn its keep).
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.rng import as_generator

__all__ = [
    "poisson_arrivals",
    "constant_arrivals",
    "bursty_arrivals",
    "diurnal_arrivals",
    "flash_crowd_arrivals",
    "trace_arrivals",
    "zipf_popularity",
    "class_mix",
    "diurnal_class_mix",
]


def poisson_arrivals(
    rate_hz: float, n: int, rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """``n`` Poisson arrival times at mean rate ``rate_hz`` (steady load)."""
    if rate_hz <= 0:
        raise ValueError(f"arrival rate must be positive, got {rate_hz}")
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    rng = as_generator(rng)
    return np.cumsum(rng.exponential(1.0 / rate_hz, n))


def constant_arrivals(rate_hz: float, n: int) -> np.ndarray:
    """``n`` perfectly periodic arrivals (deterministic D/·/1 input)."""
    if rate_hz <= 0:
        raise ValueError(f"arrival rate must be positive, got {rate_hz}")
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return (np.arange(n, dtype=np.float64) + 1.0) / rate_hz


def bursty_arrivals(
    base_rate_hz: float,
    burst_rate_hz: float,
    n: int,
    mean_phase_s: float = 0.5,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Markov-modulated Poisson arrivals: quiet/burst phases alternate.

    The process switches between a ``base_rate_hz`` phase and a
    ``burst_rate_hz`` phase; phase durations are exponential with mean
    ``mean_phase_s``.  Same long-run mean rate as a Poisson stream at the
    average of the two rates, but with the clumped arrivals that separate
    tail latency from mean latency in practice.
    """
    if base_rate_hz <= 0 or burst_rate_hz <= 0:
        raise ValueError("arrival rates must be positive")
    if burst_rate_hz < base_rate_hz:
        raise ValueError(
            f"burst rate {burst_rate_hz} must be >= base rate {base_rate_hz}"
        )
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if mean_phase_s <= 0:
        raise ValueError(f"mean_phase_s must be positive, got {mean_phase_s}")
    rng = as_generator(rng)
    out = np.empty(n, dtype=np.float64)
    t = 0.0
    produced = 0
    in_burst = False
    while produced < n:
        rate = burst_rate_hz if in_burst else base_rate_hz
        phase_end = t + rng.exponential(mean_phase_s)
        while produced < n:
            t_next = t + rng.exponential(1.0 / rate)
            if t_next > phase_end:
                # Memoryless: restart the draw at the phase boundary.
                t = phase_end
                break
            t = t_next
            out[produced] = t
            produced += 1
        in_burst = not in_burst
    return out


def _thinned_poisson(
    rng: np.random.Generator,
    peak_hz: float,
    rate_fn,
    n: int,
    chunk: int,
) -> np.ndarray:
    """Exact Lewis–Shedler thinning, vectorized in fixed-size chunks.

    Candidates arrive as a homogeneous Poisson stream at ``peak_hz``
    (one ``cumsum`` of exponential gaps per chunk) and survive with
    probability ``rate_fn(t) / peak_hz`` (one uniform array per chunk) —
    an exact sampler of the inhomogeneous process with no per-event
    Python loop.  The chunk size is a pure function of the caller's
    arguments, so a given seed always consumes the generator identically
    and yields the same trace.
    """
    out = np.empty(n, dtype=np.float64)
    t = 0.0
    produced = 0
    while produced < n:
        times = t + np.cumsum(rng.exponential(1.0 / peak_hz, chunk))
        kept = times[rng.random(chunk) * peak_hz < rate_fn(times)]
        take = min(n - produced, kept.shape[0])
        out[produced : produced + take] = kept[:take]
        produced += take
        t = float(times[-1])
    return out


def diurnal_arrivals(
    mean_rate_hz: float,
    n: int,
    period_s: float,
    depth: float = 0.8,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Sinusoidally modulated Poisson arrivals (a compressed day/night cycle).

    The instantaneous rate is ``mean_rate_hz * (1 + depth * sin(2πt/period_s))``
    — a smooth swing between off-peak (``1-depth``) and peak (``1+depth``)
    load, sampled exactly via vectorized Lewis–Shedler thinning (the
    whole trace is emitted in a handful of array operations; see the
    pinned-trace regression test in ``tests/serving/test_arrivals.py``).
    This is the load shape autoscalers exist for: capacity sized for the
    peak wastes replica-seconds all night, capacity sized for the mean
    melts every peak.
    """
    if mean_rate_hz <= 0:
        raise ValueError(f"arrival rate must be positive, got {mean_rate_hz}")
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if period_s <= 0:
        raise ValueError(f"period_s must be positive, got {period_s}")
    if not 0.0 <= depth < 1.0:
        raise ValueError(f"depth must be in [0, 1), got {depth}")
    rng = as_generator(rng)
    peak = mean_rate_hz * (1.0 + depth)
    # Mean acceptance is 1 / (1 + depth); size chunks so one usually
    # covers the request (bounded for million-request traces).
    chunk = max(256, min(1 << 20, int(math.ceil(1.15 * n * (1.0 + depth))) + 64))

    def rate(t: np.ndarray) -> np.ndarray:
        return mean_rate_hz * (1.0 + depth * np.sin(2.0 * np.pi * t / period_s))

    return _thinned_poisson(rng, peak, rate, n, chunk)


def flash_crowd_arrivals(
    base_rate_hz: float,
    peak_rate_hz: float,
    n: int,
    spike_start_s: float,
    spike_duration_s: float,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Poisson arrivals with one sudden sustained spike (a flash crowd).

    Rate is ``base_rate_hz`` everywhere except the window
    ``[spike_start_s, spike_start_s + spike_duration_s)``, where it jumps
    to ``peak_rate_hz`` with no ramp — the step change that separates
    balancing policies by how badly the slowest replica's queue explodes
    before the fleet reacts.  Sampled exactly by vectorized thinning of
    a ``peak_rate_hz`` candidate stream (step rates are just a thinning
    probability that switches at the boundaries), deterministic per
    seed with no per-event loop.
    """
    if base_rate_hz <= 0:
        raise ValueError(f"base rate must be positive, got {base_rate_hz}")
    if peak_rate_hz < base_rate_hz:
        raise ValueError(
            f"peak rate {peak_rate_hz} must be >= base rate {base_rate_hz}"
        )
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if spike_start_s < 0 or spike_duration_s <= 0:
        raise ValueError("spike_start_s must be >= 0 and spike_duration_s positive")
    rng = as_generator(rng)
    spike_end_s = spike_start_s + spike_duration_s
    # Acceptance off-spike is base/peak; size chunks for that worst case
    # (bounded for million-request traces).
    chunk = max(
        256,
        min(1 << 20, int(math.ceil(1.15 * n * peak_rate_hz / base_rate_hz)) + 64),
    )

    def rate(t: np.ndarray) -> np.ndarray:
        return np.where(
            (spike_start_s <= t) & (t < spike_end_s), peak_rate_hz, base_rate_hz
        )

    return _thinned_poisson(rng, peak_rate_hz, rate, n, chunk)


def trace_arrivals(times_s) -> np.ndarray:
    """Validate and normalize a recorded arrival-time trace.

    Accepts any sequence of non-negative, non-decreasing timestamps
    (seconds) — e.g. parsed from an access log — and returns it as a
    float64 array ready for :meth:`repro.serving.Server.serve`.
    """
    times = np.asarray(times_s, dtype=np.float64)
    if times.ndim != 1 or times.size == 0:
        raise ValueError("trace must be a non-empty 1-D sequence of timestamps")
    if times[0] < 0:
        raise ValueError(f"timestamps must be non-negative, got {times[0]}")
    if np.any(np.diff(times) < 0):
        raise ValueError("trace timestamps must be non-decreasing")
    return times


def zipf_popularity(
    n_items: int,
    size: int,
    exponent: float = 1.1,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Sample ``size`` item indices with Zipf-like popularity skew.

    Item ``i`` is drawn with probability proportional to ``(i+1)**-exponent``
    — a few hot items dominate, as in real request streams.  The returned
    indices select which image each request carries, so repeated requests
    create result-cache hits.
    """
    if n_items <= 0:
        raise ValueError(f"n_items must be positive, got {n_items}")
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    if exponent < 0:
        raise ValueError(f"exponent must be non-negative, got {exponent}")
    rng = as_generator(rng)
    weights = (np.arange(1, n_items + 1, dtype=np.float64)) ** -exponent
    return rng.choice(n_items, size=size, p=weights / weights.sum())


def _validate_shares(shares) -> np.ndarray:
    shares = np.asarray(shares, dtype=np.float64)
    if shares.ndim != 1 or shares.size == 0:
        raise ValueError("shares must be a non-empty 1-D sequence")
    if np.any(shares < 0) or shares.sum() <= 0:
        raise ValueError(f"shares must be non-negative with a positive sum: {shares}")
    return shares / shares.sum()


def class_mix(
    n: int, shares, rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """Sample ``n`` request-class codes with fixed mix proportions.

    ``shares[c]`` is the traffic fraction of class code ``c`` (class
    codes index a :class:`~repro.serving.classes.ClassSet`; shares are
    normalized, so weights work too).  Returns an ``int8`` code array
    aligned with an arrival trace — the ``request_classes`` input of
    the serving engines.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    shares = _validate_shares(shares)
    rng = as_generator(rng)
    return rng.choice(shares.size, size=n, p=shares).astype(np.int8)


def diurnal_class_mix(
    arrival_s,
    period_s: float,
    peak_shares,
    trough_shares,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Class codes whose mix swings with the diurnal cycle of a trace.

    Real tenant mixes are time-of-day dependent: interactive traffic
    dominates the daytime peak while batch work fills the trough.  For
    each arrival time ``t`` the per-class shares are interpolated
    between ``trough_shares`` and ``peak_shares`` by the same
    ``sin(2πt/period_s)`` phase :func:`diurnal_arrivals` uses for the
    rate, then one categorical draw per request picks its class.  Pair
    it with ``diurnal_arrivals(..., period_s=period_s)`` on the same
    ``period_s`` so "busier" and "more interactive" coincide — the
    overload shape the ``tenants`` experiment stresses.
    """
    arrival_s = np.asarray(arrival_s, dtype=np.float64)
    if arrival_s.ndim != 1 or arrival_s.size == 0:
        raise ValueError("arrival_s must be a non-empty 1-D time array")
    if period_s <= 0:
        raise ValueError(f"period_s must be positive, got {period_s}")
    peak = _validate_shares(peak_shares)
    trough = _validate_shares(trough_shares)
    if peak.shape != trough.shape:
        raise ValueError("peak_shares and trough_shares need the same length")
    rng = as_generator(rng)
    # Phase in [0, 1]: 1 at the sinusoid's crest, 0 in the trough.
    phase = 0.5 * (1.0 + np.sin(2.0 * np.pi * arrival_s / period_s))
    shares = trough[None, :] + phase[:, None] * (peak - trough)[None, :]
    shares /= shares.sum(axis=1, keepdims=True)
    # One inverse-CDF draw per request, vectorized across the trace.
    cdf = np.cumsum(shares, axis=1)
    u = rng.random(arrival_s.size)
    return (u[:, None] > cdf).sum(axis=1).astype(np.int8)
