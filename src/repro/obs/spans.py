"""Virtual-clock span tracing: request timelines as a vectorized SoA log.

A distributed trace answers the question aggregate counters cannot:
*where did this particular request's time go?*  This module records the
answer the same way :class:`~repro.sim.records.RequestLog` records
outcomes — as a structure-of-arrays :class:`SpanLog` whose columns are
NumPy vectors, so a million-request trace costs megabytes and vector
ops, not millions of Python objects.

Two kinds of rows share the log:

* **spans** — ``[start_s, end_s)`` intervals on the virtual clock
  (request lifetime, queue wait, batch execution, offload legs), with
  ``parent`` linking children to the owning request's root span;
* **instant events** — ``start_s == end_s`` markers for discrete
  happenings (crash, fault onset, timeout, retry, hedge, breaker trip,
  degrade-mode change, scale decision, SLO alert).

The :class:`Tracer` is built for the ≤10%-overhead gate: event loops
append only *sparse* rows (one per dispatched batch, one per rare
fault/retry event), while the dense per-request spans (root, queue,
service) are synthesized **vectorized** at :meth:`Tracer.finalize` from
the already-populated ``RequestLog`` columns.  Determinism is free:
every timestamp comes off the virtual clock in event order, so oracle
and ``--live`` replays emit field-for-field identical logs.

:meth:`SpanLog.to_chrome` exports Chrome trace-event JSON that opens
directly in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.
"""

from __future__ import annotations

import gc
import json

import numpy as np

__all__ = [
    "SpanLog",
    "Tracer",
    "SPAN_NAMES",
    "SPAN_REQUEST",
    "SPAN_QUEUE",
    "SPAN_SERVICE",
    "SPAN_BATCH",
    "SPAN_EDGE_GATE",
    "SPAN_UPLINK",
    "SPAN_CLOUD",
    "SPAN_DOWNLINK",
    "EV_CRASH",
    "EV_RECOVER",
    "EV_FAULT",
    "EV_TIMEOUT",
    "EV_RETRY",
    "EV_HEDGE",
    "EV_BREAKER_TRIP",
    "EV_MODE",
    "EV_SHED",
    "EV_SCALE",
    "EV_ALERT",
    "EV_BATCH_FAIL",
    "EV_SESSION",
    "EV_CWND",
]

# Interval span kinds (end_s > start_s, except zero-width degenerates).
(
    SPAN_REQUEST,  # arrival → completion, the per-request root
    SPAN_QUEUE,  # arrival → dispatch (queue wait + batch formation)
    SPAN_SERVICE,  # dispatch → completion (model execution incl. batch)
    SPAN_BATCH,  # one dispatched batch on one replica/worker
    SPAN_EDGE_GATE,  # offload: local gate inference on the edge device
    SPAN_UPLINK,  # offload: edge → cloud transfer
    SPAN_CLOUD,  # offload: cloud-side service
    SPAN_DOWNLINK,  # offload: cloud → edge transfer
) = range(8)

# Instant event kinds (start_s == end_s).
(
    EV_CRASH,
    EV_RECOVER,
    EV_FAULT,
    EV_TIMEOUT,
    EV_RETRY,
    EV_HEDGE,
    EV_BREAKER_TRIP,
    EV_MODE,
    EV_SHED,
    EV_SCALE,
    EV_ALERT,
    EV_BATCH_FAIL,
    EV_SESSION,  # netsim: link session (re)established or carrier-dropped
    EV_CWND,  # netsim: AIMD window cut (multiplicative decrease / timeout)
) = range(8, 22)

SPAN_NAMES = (
    "request",
    "queue",
    "service",
    "batch",
    "edge_gate",
    "uplink",
    "cloud",
    "downlink",
    "crash",
    "recover",
    "fault",
    "timeout",
    "retry",
    "hedge",
    "breaker_trip",
    "mode",
    "shed",
    "scale",
    "alert",
    "batch_fail",
    "session",
    "cwnd",
)

NO_PARENT = -1
NO_REQ = -1
NO_REPLICA = -1


class SpanLog:
    """Structure-of-arrays span/event log (the trace analogue of RequestLog).

    Columns (all length ``n``):

    - ``kind``    int16 — span/event kind code (see ``SPAN_NAMES``)
    - ``req``     int64 — owning request index, or ``-1``
    - ``start_s`` float64 — virtual-clock start
    - ``end_s``   float64 — virtual-clock end (== start for events)
    - ``replica`` int32 — replica/worker id, or ``-1``
    - ``parent``  int64 — row index of the parent span, or ``-1``
    """

    __slots__ = ("kind", "req", "start_s", "end_s", "replica", "parent")

    def __init__(self, kind, req, start_s, end_s, replica, parent) -> None:
        self.kind = np.asarray(kind, dtype=np.int16)
        self.req = np.asarray(req, dtype=np.int64)
        self.start_s = np.asarray(start_s, dtype=np.float64)
        self.end_s = np.asarray(end_s, dtype=np.float64)
        self.replica = np.asarray(replica, dtype=np.int32)
        self.parent = np.asarray(parent, dtype=np.int64)
        n = self.kind.shape[0]
        for name in self.__slots__:
            if getattr(self, name).shape != (n,):
                raise ValueError(f"SpanLog column {name!r} is not length {n}")

    def __len__(self) -> int:
        return int(self.kind.shape[0])

    @classmethod
    def empty(cls) -> "SpanLog":
        """A zero-row log."""
        z: list = []
        return cls(z, z, z, z, z, z)

    def durations(self) -> np.ndarray:
        """``end_s - start_s`` per row (zero for instant events)."""
        return self.end_s - self.start_s

    def mask(self, kind: int) -> np.ndarray:
        """Boolean mask selecting rows of one kind."""
        return self.kind == kind

    def count(self, kind: int) -> int:
        """Number of rows of one kind."""
        return int(np.count_nonzero(self.kind == kind))

    def children_of(self, row: int) -> np.ndarray:
        """Row indices whose ``parent`` is ``row``."""
        return np.nonzero(self.parent == row)[0]

    def to_chrome(self, path, max_requests: int = 2000, counters: list | None = None) -> int:
        """Write Chrome trace-event JSON; returns the number of events.

        Layout: batch spans and instant events ride the replica lanes
        (``pid`` 0, ``tid`` = replica id); per-request spans ride
        request lanes (``pid`` 1, ``tid`` = request index).  Times are
        microseconds as the format requires.  Open the file in
        https://ui.perfetto.dev or ``chrome://tracing``.

        ``max_requests`` is the **request-lane cap**: only the first
        ``max_requests`` distinct request ids (in span order) get
        lanes, so a million-request run stays openable in a viewer.
        Pass a larger value (or ``float("inf")``) to keep more lanes.
        The cap is accounted for, not silent — the file's top-level
        ``"metadata"`` object records ``request_lanes_kept``,
        ``request_lanes_dropped``, and ``events_dropped``.

        ``counters`` splices extra pre-built trace events into the same
        file (Perfetto counter tracks from
        :meth:`~repro.obs.timeline.ResourceTimelines.counter_events`).
        """
        events: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "args": {"name": "replicas"},
            },
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "args": {"name": "requests"},
            },
        ]
        is_instant = self.kind >= EV_CRASH
        is_request_lane = (~is_instant) & (self.kind != SPAN_BATCH)
        kept_reqs: set[int] = set()
        dropped_reqs: set[int] = set()
        n_dropped_events = 0
        for i in range(len(self)):
            kind = int(self.kind[i])
            name = SPAN_NAMES[kind]
            ts = float(self.start_s[i]) * 1e6
            req = int(self.req[i])
            replica = int(self.replica[i])
            if is_instant[i]:
                events.append(
                    {
                        "name": name,
                        "ph": "i",
                        "s": "t",
                        "ts": ts,
                        "pid": 0,
                        "tid": max(replica, 0),
                        "args": {"req": req},
                    }
                )
                continue
            dur = (float(self.end_s[i]) - float(self.start_s[i])) * 1e6
            if is_request_lane[i]:
                if req not in kept_reqs:
                    if len(kept_reqs) >= max_requests:
                        dropped_reqs.add(req)
                        n_dropped_events += 1
                        continue
                    kept_reqs.add(req)
                pid, tid = 1, req
            else:
                pid, tid = 0, max(replica, 0)
            events.append(
                {
                    "name": name,
                    "ph": "X",
                    "ts": ts,
                    "dur": dur,
                    "pid": pid,
                    "tid": tid,
                    "args": {"req": req, "replica": replica},
                }
            )
        if counters:
            events.extend(counters)
        payload = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "metadata": {
                "max_requests": max_requests if max_requests != float("inf") else -1,
                "request_lanes_kept": len(kept_reqs),
                "request_lanes_dropped": len(dropped_reqs),
                "events_dropped": n_dropped_events,
            },
        }
        path = str(path)
        with open(path, "w") as fh:
            json.dump(payload, fh)
        return len(events)


class Tracer:
    """Accumulates sparse in-loop rows, synthesizes dense rows at finalize.

    Event loops call :meth:`batch`, :meth:`event`, and :meth:`leg` —
    each a single tuple append, cheap enough for the hot path.  At the
    end of a run, :meth:`finalize` fabricates the per-request root /
    queue / service spans **vectorized** from ``RequestLog`` columns
    (no per-request Python work during the simulation) and parent-links
    everything into one :class:`SpanLog`.
    """

    def __init__(self) -> None:
        self._rows: list[tuple[int, int, float, float, int]] = []
        self._log: SpanLog | None = None

    @property
    def n_rows(self) -> int:
        """Sparse rows recorded so far (batches + events + legs)."""
        return len(self._rows)

    def batch(self, start_s: float, end_s: float, replica: int, req: int = NO_REQ):
        """Record one dispatched batch span on a replica lane."""
        self._rows.append((SPAN_BATCH, req, start_s, end_s, replica))

    def event(self, kind: int, t: float, replica: int = NO_REPLICA, req: int = NO_REQ):
        """Record an instant event (crash/fault/retry/alert/...)."""
        self._rows.append((kind, req, t, t, replica))

    def leg(self, kind: int, req: int, start_s: float, end_s: float, replica: int = NO_REPLICA):
        """Record an offload leg span (edge gate, uplink, cloud, downlink)."""
        self._rows.append((kind, req, start_s, end_s, replica))

    def finalize(
        self,
        arrival_s: np.ndarray,
        completion_s: np.ndarray,
        dispatch_s: np.ndarray | None = None,
        replica_id: np.ndarray | None = None,
    ) -> SpanLog:
        """Build the :class:`SpanLog`: synthesized request spans + recorded rows.

        ``arrival_s``/``completion_s`` (and optionally ``dispatch_s``,
        ``replica_id``) are ``RequestLog`` columns.  Requests with NaN
        completion (shed, cancelled, lost) get no spans — span
        conservation versus the log is "one root per completed row".
        Returns the same log on repeat calls (single-use semantics).
        """
        if self._log is not None:
            return self._log
        # The build allocates a few 100MB-scale arrays plus short-lived
        # lists; on a heap that just ran a million-request simulation a
        # gen-2 collection triggered mid-build costs more than the build
        # itself.  Nothing here creates cycles, so pause the collector.
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            return self._build(arrival_s, completion_s, dispatch_s, replica_id)
        finally:
            if gc_was_enabled:
                gc.enable()

    def _build(self, arrival_s, completion_s, dispatch_s, replica_id) -> SpanLog:
        arrival_s = np.asarray(arrival_s, dtype=np.float64)
        completion_s = np.asarray(completion_s, dtype=np.float64)
        done = ~np.isnan(completion_s)
        reqs = np.nonzero(done)[0]
        n_done = reqs.shape[0]

        kinds = [np.full(n_done, SPAN_REQUEST, dtype=np.int16)]
        req_col = [reqs.astype(np.int64)]
        starts = [arrival_s[done]]
        ends = [completion_s[done]]
        if replica_id is not None:
            rep_done = np.asarray(replica_id)[done].astype(np.int32)
        else:
            rep_done = np.full(n_done, NO_REPLICA, dtype=np.int32)
        replicas = [rep_done]
        parents = [np.full(n_done, NO_PARENT, dtype=np.int64)]

        # Root rows occupy [0, n_done); request i's root row is its rank
        # among completed requests — recoverable via searchsorted(reqs, i).
        if dispatch_s is not None:
            dispatch_s = np.asarray(dispatch_s, dtype=np.float64)
            d = dispatch_s[done]
            valid = ~np.isnan(d)
            child_req = reqs[valid]
            child_parent = np.nonzero(valid)[0].astype(np.int64)
            # queue: arrival → dispatch
            kinds.append(np.full(child_req.shape[0], SPAN_QUEUE, dtype=np.int16))
            req_col.append(child_req.astype(np.int64))
            starts.append(arrival_s[child_req])
            ends.append(d[valid])
            replicas.append(rep_done[valid])
            parents.append(child_parent)
            # service: dispatch → completion
            kinds.append(np.full(child_req.shape[0], SPAN_SERVICE, dtype=np.int16))
            req_col.append(child_req.astype(np.int64))
            starts.append(d[valid])
            ends.append(completion_s[child_req])
            replicas.append(rep_done[valid])
            parents.append(child_parent)

        # Recorded sparse rows: batches, events, offload legs.
        if self._rows:
            rows = self._rows
            r_kind = np.array([r[0] for r in rows], dtype=np.int16)
            r_req = np.array([r[1] for r in rows], dtype=np.int64)
            r_start = np.array([r[2] for r in rows], dtype=np.float64)
            r_end = np.array([r[3] for r in rows], dtype=np.float64)
            r_rep = np.array([r[4] for r in rows], dtype=np.int32)
            # Parent-link rows that carry a request id to that request's root.
            r_parent = np.full(r_req.shape[0], NO_PARENT, dtype=np.int64)
            has_req = r_req >= 0
            if n_done and has_req.any():
                pos = np.searchsorted(reqs, r_req[has_req])
                pos_ok = (pos < n_done) & (reqs[np.minimum(pos, n_done - 1)] == r_req[has_req])
                linked = np.where(pos_ok, pos, NO_PARENT)
                r_parent[has_req] = linked
            kinds.append(r_kind)
            req_col.append(r_req)
            starts.append(r_start)
            ends.append(r_end)
            replicas.append(r_rep)
            parents.append(r_parent)

        self._log = SpanLog(
            np.concatenate(kinds) if kinds else [],
            np.concatenate(req_col),
            np.concatenate(starts),
            np.concatenate(ends),
            np.concatenate(replicas),
            np.concatenate(parents),
        )
        return self._log
