"""Phase-attribution profiling for the real (wall-clock) hot loops.

Everything else in :mod:`repro.obs` observes *virtual* time — where a
request's simulated latency went.  This module answers the other
question every performance PR needs answered: **where did the host CPU
go?**  ``bench_compare check`` can say a benchmark regressed; the
profiler says *which engine phase* regressed.

Two complementary instruments:

* :class:`PhaseProfiler` — scoped hierarchical timers the engines
  thread through their event loops (``prof=`` parameter, mirroring
  ``obs=``).  Each phase is a node in a tree keyed by the enclosing
  scope path; entering/leaving costs two clock reads and a dict probe,
  cheap enough for the ≤1.15x overhead gate at a million requests.
  The resulting :class:`PhaseReport` carries call counts, total and
  **self** seconds per phase (self = total minus time attributed to
  child phases), renders as a table, and exports to collapsed-stack
  text and speedscope JSON for flamegraphs.  The phase *tree* —
  structure and call counts — is deterministic for a deterministic
  engine run; with an injected virtual clock even the times are.
* :class:`SamplingProfiler` — an optional low-overhead statistical
  mode: a background thread samples the profiled thread's Python stack
  at a fixed interval and attributes each sample to ``repro.*``
  modules.  No instrumentation points needed; useful when the slow
  code is *outside* the phase-annotated loops.

The module-level :func:`current_profiler` hook lets ``tools/
bench_compare.py`` profile an unmodified benchmark run: with
``REPRO_PROF=1`` in the environment, engines built without an explicit
``prof=`` attach to one process-global profiler, and an ``atexit``
handler writes the merged report to ``REPRO_PROF_OUT`` (JSON) — which
is how a regression failure gets re-run and named by phase.
"""

from __future__ import annotations

import atexit
import json
import os
import sys
import threading
import time

__all__ = [
    "PhaseProfiler",
    "PhaseStat",
    "PhaseReport",
    "SamplingProfiler",
    "compare_phase_reports",
    "top_regressing_phase",
    "current_profiler",
    "enable_global_profiler",
    "disable_global_profiler",
]

#: Engine phase names used by the serving/cluster/offload event loops.
#: Kept in one place so tests, docs, and the bench tooling agree.
ENGINE_PHASES = (
    "serve",       # root: one serve_log()/serve() call
    "warmup",      # fastpath plan compilation before dispatch
    "event_loop",  # the virtual-clock loop (self time = queue scans)
    "ingest",      # arrival work: cache probe, admission, routing.  The
                   # cluster scopes this per *burst* of consecutive
                   # arrivals (count = bursts); the serving engine scopes
                   # it per arrival (count = arrivals).
    "batch_form",  # deadline-triggered batch formation
    "dispatch",    # batch dispatch: routing pass + timing model + log writes
    "complete",    # completion handling: purge, response judging
    "events",      # heap events: crash/recover/fault/timeout/retry/hedge/tick
    "inference",   # oracle lookup / live model inference over the batches
    "network",     # offload: uplink/downlink transfer sampling
    "report",      # report build: vectorized reductions over the log
)


class _Node:
    """One phase in the tree: aggregate count/total under one scope path."""

    __slots__ = ("name", "count", "total_s", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.children: dict[str, _Node] = {}


class _Scope:
    """Reusable ``with`` adapter around one profiler + phase name."""

    __slots__ = ("_prof", "_name")

    def __init__(self, prof: "PhaseProfiler", name: str) -> None:
        self._prof = prof
        self._name = name

    def __enter__(self) -> None:
        self._prof.start(self._name)

    def __exit__(self, *exc) -> None:
        self._prof.stop()


class PhaseStat:
    """One row of a :class:`PhaseReport`: a phase path and its totals."""

    __slots__ = ("path", "count", "total_s", "self_s")

    def __init__(self, path: tuple[str, ...], count: int, total_s: float, self_s: float):
        self.path = path
        self.count = count
        self.total_s = total_s
        self.self_s = self_s

    @property
    def name(self) -> str:
        """Leaf phase name (last path component)."""
        return self.path[-1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PhaseStat({';'.join(self.path)}, n={self.count}, "
            f"total={self.total_s:.6f}s, self={self.self_s:.6f}s)"
        )


class PhaseReport:
    """Frozen view of a finished profile: rows in depth-first tree order.

    ``self_s`` is each phase's total minus its children's totals — the
    time spent *in* the phase rather than in an annotated sub-phase —
    so self times sum to the root totals and a flamegraph built from
    them conserves width.
    """

    def __init__(self, rows: list[PhaseStat]) -> None:
        self.rows = tuple(rows)

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def total_s(self) -> float:
        """Wall seconds across the root phases."""
        return sum(r.total_s for r in self.rows if len(r.path) == 1)

    def signature(self) -> tuple[tuple[tuple[str, ...], int], ...]:
        """The deterministic shape of the profile: (path, count) rows.

        Two profiled replays of the same deterministic scenario produce
        identical signatures even though wall times differ — this is
        what the determinism tests pin.
        """
        return tuple(sorted((r.path, r.count) for r in self.rows))

    def by_name(self) -> dict[str, tuple[int, float, float]]:
        """Aggregate rows by leaf phase name: name -> (count, total, self).

        A phase that appears under several parents (``dispatch`` under
        both ``ingest`` and ``batch_form``) folds into one entry — the
        view :func:`compare_phase_reports` uses, since attribution
        should not depend on which scope happened to trigger the work.
        """
        out: dict[str, list[float]] = {}
        for r in self.rows:
            agg = out.setdefault(r.name, [0, 0.0, 0.0])
            agg[0] += r.count
            agg[1] += r.total_s
            agg[2] += r.self_s
        return {k: (int(c), t, s) for k, (c, t, s) in out.items()}

    def get(self, *path: str) -> PhaseStat | None:
        """Look up one row by its full path (``get("serve", "report")``)."""
        for r in self.rows:
            if r.path == path:
                return r
        return None

    def render(self) -> str:
        """Fixed-width table: indentation mirrors the phase tree."""
        lines = [f"{'phase':<40} {'calls':>10} {'total':>12} {'self':>12}"]
        for r in self.rows:
            label = "  " * (len(r.path) - 1) + r.name
            lines.append(
                f"{label:<40} {r.count:>10d} {r.total_s * 1e3:>9.2f} ms "
                f"{r.self_s * 1e3:>9.2f} ms"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------- exports

    def to_dict(self) -> dict:
        """JSON-ready form (see :meth:`from_dict` for the inverse)."""
        return {
            "schema": 1,
            "total_s": self.total_s,
            "phases": {
                ";".join(r.path): {
                    "count": r.count,
                    "total_s": r.total_s,
                    "self_s": r.self_s,
                }
                for r in self.rows
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PhaseReport":
        """Rebuild a report from :meth:`to_dict` output (JSON round-trip)."""
        rows = [
            PhaseStat(tuple(path.split(";")), int(v["count"]), float(v["total_s"]),
                      float(v["self_s"]))
            for path, v in payload["phases"].items()
        ]
        rows.sort(key=lambda r: r.path)
        return cls(rows)

    def to_collapsed(self, path=None) -> str:
        """Collapsed-stack text (``a;b;c 1234``, self-microseconds).

        The format Brendan Gregg's ``flamegraph.pl`` and speedscope both
        ingest; one line per phase path with nonzero self time.  Returns
        the text; ``path`` additionally writes it to a file.
        """
        lines = [
            f"{';'.join(r.path)} {max(1, round(r.self_s * 1e6))}"
            for r in self.rows
            if r.self_s > 0.0
        ]
        text = "\n".join(lines) + ("\n" if lines else "")
        if path is not None:
            with open(str(path), "w") as fh:
                fh.write(text)
        return text

    def to_speedscope(self, path, name: str = "repro phase profile") -> dict:
        """Write speedscope JSON (https://www.speedscope.app) and return it.

        Each phase path becomes one weighted sample in a ``sampled``
        profile, weighted by self time, so the flamegraph's widths are
        the self-time attribution.
        """
        frame_index: dict[str, int] = {}
        frames: list[dict] = []

        def frame(n: str) -> int:
            idx = frame_index.get(n)
            if idx is None:
                idx = frame_index[n] = len(frames)
                frames.append({"name": n})
            return idx

        samples, weights = [], []
        for r in self.rows:
            if r.self_s <= 0.0:
                continue
            samples.append([frame(n) for n in r.path])
            weights.append(r.self_s)
        payload = {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "shared": {"frames": frames},
            "profiles": [
                {
                    "type": "sampled",
                    "name": name,
                    "unit": "seconds",
                    "startValue": 0,
                    "endValue": sum(weights),
                    "samples": samples,
                    "weights": weights,
                }
            ],
            "name": name,
            "exporter": "repro.obs.prof",
        }
        with open(str(path), "w") as fh:
            json.dump(payload, fh)
        return payload


class PhaseProfiler:
    """Scoped hierarchical wall-clock timers for the engine hot loops.

    Usage::

        prof = PhaseProfiler()
        with prof.phase("serve"):
            with prof.phase("dispatch"):
                ...
        print(prof.report().render())

    Hot paths skip the context-manager allocation and call
    :meth:`start`/:meth:`stop` directly — two clock reads, one dict
    probe, and a list push/pop per scope.  Nested scopes build a tree
    keyed by the enclosing path, so ``dispatch`` under ``ingest`` and
    ``dispatch`` under ``batch_form`` are distinct rows (and fold back
    together in :meth:`PhaseReport.by_name`).

    Parameters
    ----------
    clock:
        0-arg callable returning seconds; ``time.perf_counter`` by
        default.  Injecting a fake clock makes even the recorded times
        deterministic (the tests do), while structure and call counts
        are deterministic under any clock.
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._root = _Node("")
        self._cur = self._root
        self._stack: list[tuple[_Node, _Node, float]] = []

    def start(self, name: str) -> None:
        """Enter phase ``name`` as a child of the current scope."""
        cur = self._cur
        node = cur.children.get(name)
        if node is None:
            node = cur.children[name] = _Node(name)
        self._stack.append((cur, node, self._clock()))
        self._cur = node

    def stop(self) -> None:
        """Leave the innermost open phase, crediting its elapsed time."""
        prev, node, t0 = self._stack.pop()
        node.total_s += self._clock() - t0
        node.count += 1
        self._cur = prev

    def phase(self, name: str) -> _Scope:
        """``with``-statement adapter for :meth:`start`/:meth:`stop`."""
        return _Scope(self, name)

    @property
    def depth(self) -> int:
        """Number of currently open scopes (0 when idle)."""
        return len(self._stack)

    def reset(self) -> None:
        """Drop all recorded phases (open scopes must be closed first)."""
        if self._stack:
            raise RuntimeError(f"cannot reset with {len(self._stack)} open scope(s)")
        self._root = _Node("")
        self._cur = self._root

    def report(self) -> PhaseReport:
        """Snapshot the tree as a :class:`PhaseReport` (depth-first order).

        Self time is total minus the children's totals, clamped at zero
        (a child re-entered from its own subtree would otherwise
        double-subtract; the engines never nest a phase inside itself).
        """
        if self._stack:
            raise RuntimeError(
                f"cannot report with {len(self._stack)} open scope(s); "
                "close every phase() first"
            )
        rows: list[PhaseStat] = []

        def walk(node: _Node, path: tuple[str, ...]) -> None:
            for name, child in node.children.items():
                child_path = path + (name,)
                child_total = sum(g.total_s for g in child.children.values())
                rows.append(
                    PhaseStat(
                        child_path,
                        child.count,
                        child.total_s,
                        max(0.0, child.total_s - child_total),
                    )
                )
                walk(child, child_path)

        walk(self._root, ())
        return PhaseReport(rows)


def compare_phase_reports(
    base: PhaseReport | dict, new: PhaseReport | dict
) -> list[tuple[str, float, float, float]]:
    """Per-phase self-time deltas: (name, base_s, new_s, delta_s) rows.

    Accepts live reports or their :meth:`PhaseReport.to_dict` JSON forms
    (what ``BENCH_<n>.json`` / ``REPRO_PROF_OUT`` store).  Rows are
    sorted by delta descending, so the first entry is the phase that
    slowed down the most — the attribution ``bench_compare check``
    prints under a regression failure.
    """
    if isinstance(base, dict):
        base = PhaseReport.from_dict(base)
    if isinstance(new, dict):
        new = PhaseReport.from_dict(new)
    b = {k: v[2] for k, v in base.by_name().items()}
    n = {k: v[2] for k, v in new.by_name().items()}
    rows = [
        (name, b.get(name, 0.0), n.get(name, 0.0), n.get(name, 0.0) - b.get(name, 0.0))
        for name in sorted(set(b) | set(n))
    ]
    rows.sort(key=lambda r: r[3], reverse=True)
    return rows


def top_regressing_phase(base: PhaseReport | dict, new: PhaseReport | dict) -> str:
    """Name of the phase whose self time grew the most from base to new."""
    rows = compare_phase_reports(base, new)
    if not rows:
        raise ValueError("cannot compare two empty phase reports")
    return rows[0][0]


class SamplingProfiler:
    """Statistical stack sampler attributing wall time to ``repro.*`` code.

    A daemon thread wakes every ``interval_s`` and records the profiled
    thread's current Python stack (via ``sys._current_frames``), folded
    to ``module:function`` frames.  Aggregation is a counter per folded
    stack, so an hour-long run costs kilobytes.  Use it when the time
    sink is *outside* the phase-annotated loops — the phase timers say
    "inference got slower", the sampler says *which function*.

    Sampling is wall-clock statistical by nature — the deterministic
    guarantees of :class:`PhaseProfiler` do not apply; exports carry
    sample counts, weighted by the sampling interval.

    Parameters
    ----------
    interval_s:
        Sampling period (default 1 ms — <1% overhead in practice, the
        sampler thread does O(stack depth) work per tick).
    focus:
        Module prefix given attribution priority (default ``"repro"``):
        :meth:`by_module` credits each sample to its innermost ``focus``
        frame.  Frames from this module itself are never recorded.
    """

    def __init__(self, interval_s: float = 0.001, focus: str = "repro") -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        self.interval_s = float(interval_s)
        self.focus = focus
        self.samples: dict[tuple[str, ...], int] = {}
        self._thread: threading.Thread | None = None
        self._stop_evt = threading.Event()
        self._target_ident: int | None = None

    # ------------------------------------------------------------ control

    def start(self) -> None:
        """Begin sampling the *calling* thread from a background thread."""
        if self._thread is not None:
            raise RuntimeError("sampler already running")
        self._target_ident = threading.get_ident()
        self._stop_evt.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-prof-sampler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the sampler thread and seal the sample table."""
        if self._thread is None:
            return
        self._stop_evt.set()
        self._thread.join()
        self._thread = None

    def __enter__(self) -> "SamplingProfiler":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def _run(self) -> None:
        while not self._stop_evt.wait(self.interval_s):
            frame = sys._current_frames().get(self._target_ident)
            if frame is not None:
                self._record_frame(frame)

    # ----------------------------------------------------------- recording

    def _record_frame(self, frame) -> None:
        stack: list[str] = []
        while frame is not None:
            module = frame.f_globals.get("__name__", "?")
            if module != __name__:  # never attribute time to the sampler itself
                stack.append(f"{module}:{frame.f_code.co_name}")
            frame = frame.f_back
        stack.reverse()
        self._record_stack(tuple(stack))

    def _record_stack(self, stack: tuple[str, ...]) -> None:
        """Count one folded stack (the unit tests feed synthetic stacks)."""
        self.samples[stack] = self.samples.get(stack, 0) + 1

    # ------------------------------------------------------------- queries

    @property
    def n_samples(self) -> int:
        """Total stack samples recorded so far."""
        return sum(self.samples.values())

    def by_module(self) -> dict[str, int]:
        """Sample counts attributed to the innermost ``focus`` module.

        Walks each stack from the leaf up and credits the first frame
        whose module starts with the ``focus`` prefix; stacks with no
        such frame land under ``"<other>"``.
        """
        prefix = self.focus
        out: dict[str, int] = {}
        for stack, count in self.samples.items():
            owner = "<other>"
            for entry in reversed(stack):
                module = entry.rsplit(":", 1)[0]
                if module == prefix or module.startswith(prefix + "."):
                    owner = module
                    break
            out[owner] = out.get(owner, 0) + count
        return out

    # ------------------------------------------------------------- exports

    def to_collapsed(self, path=None) -> str:
        """Collapsed-stack text (``mod:fn;mod:fn 12``, sample counts)."""
        lines = [
            f"{';'.join(stack)} {count}"
            for stack, count in sorted(self.samples.items())
            if stack
        ]
        text = "\n".join(lines) + ("\n" if lines else "")
        if path is not None:
            with open(str(path), "w") as fh:
                fh.write(text)
        return text

    def to_speedscope(self, path, name: str = "repro sampled profile") -> dict:
        """Write speedscope JSON; weights are seconds (count x interval)."""
        frame_index: dict[str, int] = {}
        frames: list[dict] = []
        samples, weights = [], []
        for stack, count in sorted(self.samples.items()):
            if not stack:
                continue
            idx = []
            for entry in stack:
                i = frame_index.get(entry)
                if i is None:
                    i = frame_index[entry] = len(frames)
                    frames.append({"name": entry})
                idx.append(i)
            samples.append(idx)
            weights.append(count * self.interval_s)
        payload = {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "shared": {"frames": frames},
            "profiles": [
                {
                    "type": "sampled",
                    "name": name,
                    "unit": "seconds",
                    "startValue": 0,
                    "endValue": sum(weights),
                    "samples": samples,
                    "weights": weights,
                }
            ],
            "name": name,
            "exporter": "repro.obs.prof",
        }
        with open(str(path), "w") as fh:
            json.dump(payload, fh)
        return payload


# --------------------------------------------------------------------- #
# process-global profiler (the bench_compare re-run hook)
# --------------------------------------------------------------------- #

_GLOBAL: PhaseProfiler | None = None
_GLOBAL_OUT: str | None = None


def current_profiler() -> PhaseProfiler | None:
    """The process-global profiler engines fall back to, or ``None``.

    Engines resolve ``prof if prof is not None else current_profiler()``
    at construction, so an unmodified benchmark suite can be profiled
    from the outside: set ``REPRO_PROF=1`` (and optionally
    ``REPRO_PROF_OUT=<path.json>``) and every engine in the process
    reports into one shared profiler, dumped at interpreter exit.
    """
    return _GLOBAL


def enable_global_profiler(out_path: str | None = None) -> PhaseProfiler:
    """Install (or return) the process-global profiler.

    ``out_path`` registers an ``atexit`` dump of the merged report as
    JSON (:meth:`PhaseReport.to_dict`); without it the rendered table
    goes to stderr instead.  Idempotent — repeat calls return the same
    profiler.
    """
    global _GLOBAL, _GLOBAL_OUT
    if _GLOBAL is None:
        _GLOBAL = PhaseProfiler()
        _GLOBAL_OUT = out_path
        atexit.register(_dump_global)
    return _GLOBAL


def disable_global_profiler() -> None:
    """Remove the process-global profiler (tests use this to isolate)."""
    global _GLOBAL
    _GLOBAL = None


def _dump_global() -> None:
    if _GLOBAL is None:
        return
    # A run that died mid-serve may leave scopes open; close them so the
    # dump never throws at interpreter exit.
    while _GLOBAL.depth:
        _GLOBAL.stop()
    report = _GLOBAL.report()
    if _GLOBAL_OUT:
        with open(_GLOBAL_OUT, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2)
    else:  # pragma: no cover - interactive convenience path
        print("\n[repro.obs.prof] phase report:\n" + report.render(), file=sys.stderr)


if os.environ.get("REPRO_PROF"):  # pragma: no cover - exercised via subprocess
    enable_global_profiler(os.environ.get("REPRO_PROF_OUT") or None)
