"""Streaming metrics for the simulation engines: counters to sketches.

A serving fleet is judged on *signals over time*, not only on end-of-run
aggregates: throughput per window, queue depth when the flash crowd
hits, the shed rate while a breaker is open.  This module is the metric
vocabulary the :class:`~repro.obs.observer.Observer` publishes into at
event-loop touchpoints:

* :class:`Counter` / :class:`Gauge` — monotone totals and last-value
  samples;
* :class:`Histogram` — fixed-bucket latency histogram with interpolated
  quantile queries, fed **vectorized** (``observe_many`` is one
  ``np.searchsorted`` + ``np.bincount`` per call), so a million sojourn
  samples cost milliseconds;
* :class:`P2Quantile` — the Jain–Chlamtac P² streaming percentile
  estimator: O(1) memory, no buckets to pre-size, for signals whose
  scale is unknown up front;
* :class:`WindowSeries` — tumbling time-window series on the virtual
  clock (count / sum / mean / last per window), the shape burn-rate
  monitors and future learned controllers consume;
* :class:`MetricsRegistry` — the named bag of all of the above that one
  engine run publishes into.

Everything here is deterministic: values arrive in virtual-clock event
order, windows are pure ``floor(t / window)`` bucketing, and no wall
clock or RNG is ever consulted — so oracle and ``--live`` replays
produce identical registries.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "P2Quantile",
    "WindowSeries",
    "MetricsRegistry",
]


class Counter:
    """A monotonically increasing total (arrivals, sheds, retries...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be >= 0) to the running total."""
        if n < 0:
            raise ValueError(f"counters only go up, got increment {n}")
        self.value += n


class Gauge:
    """A last-value-wins sample (current replica count, current mode...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value of the tracked quantity."""
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with interpolated quantile queries.

    ``edges`` are the interior bucket boundaries (ascending); values
    below ``edges[0]`` land in the first bucket, values at or above
    ``edges[-1]`` in the last.  Quantiles interpolate linearly inside
    the containing bucket (first/last buckets fall back to their finite
    edge), which bounds the error by the bucket width — the classic
    fixed-bucket trade every production metrics stack makes.

    Feeding is vectorized: :meth:`observe_many` is one
    ``np.searchsorted`` + ``np.bincount`` over the batch.
    """

    def __init__(self, edges) -> None:
        edges = np.asarray(edges, dtype=np.float64)
        if edges.ndim != 1 or edges.shape[0] < 1:
            raise ValueError("Histogram needs at least one bucket edge")
        if np.any(np.diff(edges) <= 0):
            raise ValueError("bucket edges must be strictly increasing")
        self.edges = edges
        self.counts = np.zeros(edges.shape[0] + 1, dtype=np.int64)
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    @classmethod
    def latency(cls, lo_s: float = 1e-4, hi_s: float = 60.0, per_decade: int = 24):
        """Log-spaced edges covering ``[lo_s, hi_s]`` — the sojourn default.

        ``per_decade`` buckets per factor-of-10 keeps the relative
        quantile error under ~10% across six decades of latency.
        """
        n = int(round(math.log10(hi_s / lo_s) * per_decade)) + 1
        return cls(np.logspace(math.log10(lo_s), math.log10(hi_s), n))

    @property
    def count(self) -> int:
        """Total number of observed values."""
        return int(self.counts.sum())

    def observe(self, value: float) -> None:
        """Record one value."""
        self.observe_many(np.asarray([value], dtype=np.float64))

    def observe_many(self, values: np.ndarray) -> None:
        """Record a batch of values in one vectorized pass."""
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        idx = np.searchsorted(self.edges, values, side="right")
        self.counts += np.bincount(idx, minlength=self.counts.shape[0])
        self.sum += float(values.sum())
        self.min = min(self.min, float(values.min()))
        self.max = max(self.max, float(values.max()))

    @property
    def mean(self) -> float:
        n = self.count
        return self.sum / n if n else float("nan")

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``q`` in [0, 1]) from the buckets."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        n = self.count
        if n == 0:
            return float("nan")
        target = q * n
        cum = np.cumsum(self.counts)
        b = int(np.searchsorted(cum, target, side="left"))
        b = min(b, self.counts.shape[0] - 1)
        lo = self.edges[b - 1] if b > 0 else self.min
        hi = self.edges[b] if b < self.edges.shape[0] else self.max
        inside = self.counts[b]
        if inside == 0 or hi <= lo:
            return float(min(max(lo, self.min), self.max))
        before = cum[b] - inside
        frac = (target - before) / inside
        return float(np.clip(lo + frac * (hi - lo), self.min, self.max))


class P2Quantile:
    """Jain–Chlamtac P² streaming quantile estimator (O(1) memory).

    Tracks one quantile ``q`` with five markers whose heights are
    adjusted by a piecewise-parabolic formula as values stream in — no
    buckets to pre-size, so it suits signals whose scale is unknown up
    front.  Accuracy is typically within a few percent of the exact
    sample quantile for unimodal distributions (pinned by the test
    suite against ``np.percentile``).
    """

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"q must be in (0, 1), got {q}")
        self.q = q
        self._init: list[float] = []
        # Marker heights, positions, and desired positions (after init).
        # Plain Python lists on purpose: the update touches five scalars
        # per value, where ndarray indexing overhead dominates the math.
        self._h = [0.0] * 5
        self._n = [0.0] * 5
        self._np = [0.0] * 5
        self._dn = (0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0)
        self.count = 0

    def observe(self, value: float) -> None:
        """Feed one value into the estimator."""
        value = float(value)
        self.count += 1
        if self.count <= 5:
            self._init.append(value)
            if self.count == 5:
                self._init.sort()
                self._h = list(self._init)
                self._n = [0.0, 1.0, 2.0, 3.0, 4.0]
                self._np = [0.0, 2 * self.q, 4 * self.q, 2 + 2 * self.q, 4.0]
            return
        h, n, np_, dn = self._h, self._n, self._np, self._dn
        if value < h[0]:
            h[0] = value
            k = 0
        elif value >= h[4]:
            h[4] = value
            k = 3
        elif value < h[1]:
            k = 0
        elif value < h[2]:
            k = 1
        elif value < h[3]:
            k = 2
        else:
            k = 3
        for i in range(k + 1, 5):
            n[i] += 1.0
        for i in range(5):
            np_[i] += dn[i]
        for i in (1, 2, 3):
            d = np_[i] - n[i]
            if (d >= 1 and n[i + 1] - n[i] > 1) or (d <= -1 and n[i - 1] - n[i] < -1):
                d = 1.0 if d >= 1 else -1.0
                # Piecewise-parabolic (P²) height update, linear fallback.
                hp = h[i] + d / (n[i + 1] - n[i - 1]) * (
                    (n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
                    + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
                )
                if not h[i - 1] < hp < h[i + 1]:
                    j = i + int(d)
                    hp = h[i] + d * (h[j] - h[i]) / (n[j] - n[i])
                h[i] = hp
                n[i] += d

    def observe_many(self, values) -> None:
        """Feed a batch of values (sequentially — P² is order-dependent)."""
        observe = self.observe
        for v in np.asarray(values, dtype=np.float64).ravel().tolist():
            observe(v)

    @property
    def estimate(self) -> float:
        """Current quantile estimate (NaN until any value arrived)."""
        if self.count == 0:
            return float("nan")
        if self.count <= 5:
            data = sorted(self._init)
            return float(data[min(int(self.q * len(data)), len(data) - 1)])
        return self._h[2]


class WindowSeries:
    """Tumbling time-window aggregation on the virtual clock.

    Values land in window ``floor((t - t0) / window_s)``; each window
    keeps count, sum, and last value, from which the series views
    (:meth:`counts`, :meth:`means`, :meth:`lasts`, :meth:`rates`) are
    derived.  Feeding is either per-event (:meth:`add`) or vectorized
    over a whole column (:meth:`add_many`) — both produce identical
    windows, which is what keeps streamed and replayed telemetry
    bit-for-bit comparable.
    """

    def __init__(self, window_s: float, t0: float = 0.0) -> None:
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        self.window_s = float(window_s)
        self.t0 = float(t0)
        self._count: dict[int, int] = {}
        self._sum: dict[int, float] = {}
        self._last: dict[int, float] = {}

    def _window(self, t: float) -> int:
        return int((t - self.t0) // self.window_s)

    def add(self, t: float, value: float = 1.0) -> None:
        """Record one (time, value) sample."""
        w = self._window(t)
        self._count[w] = self._count.get(w, 0) + 1
        self._sum[w] = self._sum.get(w, 0.0) + value
        self._last[w] = value

    def add_many(self, times: np.ndarray, values: np.ndarray | None = None) -> None:
        """Record a column of samples in one vectorized pass.

        Within one call, later entries win the per-window ``last`` slot
        (callers pass columns already in virtual-time order).
        """
        times = np.asarray(times, dtype=np.float64)
        if times.size == 0:
            return
        if values is None:
            values = np.ones_like(times)
        values = np.asarray(values, dtype=np.float64)
        win = ((times - self.t0) // self.window_s).astype(np.int64)
        order = np.argsort(win, kind="stable")
        win, values = win[order], values[order]
        uniq, start = np.unique(win, return_index=True)
        counts = np.diff(np.append(start, win.shape[0]))
        sums = np.add.reduceat(values, start)
        for w, c, s, last_i in zip(
            uniq.tolist(), counts.tolist(), sums.tolist(), (start + counts - 1).tolist()
        ):
            self._count[w] = self._count.get(w, 0) + int(c)
            self._sum[w] = self._sum.get(w, 0.0) + float(s)
            self._last[w] = float(values[last_i])

    @property
    def windows(self) -> np.ndarray:
        """Start times of every non-empty window, ascending."""
        keys = np.array(sorted(self._count), dtype=np.float64)
        return self.t0 + keys * self.window_s

    def _column(self, table: dict[int, float]) -> np.ndarray:
        return np.array([table[k] for k in sorted(self._count)], dtype=np.float64)

    def counts(self) -> np.ndarray:
        """Samples per window (aligned with :attr:`windows`)."""
        return self._column(self._count)

    def sums(self) -> np.ndarray:
        """Value sum per window."""
        return self._column(self._sum)

    def means(self) -> np.ndarray:
        """Mean value per window."""
        return self.sums() / self.counts()

    def lasts(self) -> np.ndarray:
        """Last value seen in each window (gauge-style sampling)."""
        return self._column(self._last)

    def rates(self) -> np.ndarray:
        """Samples per second per window (throughput view)."""
        return self.counts() / self.window_s


class MetricsRegistry:
    """Named bag of metrics one engine run publishes into.

    Accessors are get-or-create, so engine touchpoints never pre-declare
    metrics; :meth:`snapshot` reduces everything to plain floats for
    asserts, rendering, and controller features.
    """

    def __init__(self, window_s: float = 0.1, t0: float = 0.0) -> None:
        self.window_s = float(window_s)
        self.t0 = float(t0)
        self._metrics: dict[str, object] = {}

    def _get(self, name: str, factory, kind) -> object:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = factory()
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """Get-or-create the named counter."""
        return self._get(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get-or-create the named gauge."""
        return self._get(name, Gauge, Gauge)

    def histogram(self, name: str, edges=None) -> Histogram:
        """Get-or-create the named histogram (latency edges by default)."""
        factory = (lambda: Histogram(edges)) if edges is not None else Histogram.latency
        return self._get(name, factory, Histogram)

    def sketch(self, name: str, q: float = 0.99) -> P2Quantile:
        """Get-or-create the named P² streaming quantile."""
        return self._get(name, lambda: P2Quantile(q), P2Quantile)

    def series(self, name: str, window_s: float | None = None) -> WindowSeries:
        """Get-or-create the named tumbling-window series."""
        w = self.window_s if window_s is None else window_s
        return self._get(name, lambda: WindowSeries(w, self.t0), WindowSeries)

    def names(self) -> tuple[str, ...]:
        """All registered metric names, sorted."""
        return tuple(sorted(self._metrics))

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __getitem__(self, name: str):
        return self._metrics[name]

    def snapshot(self) -> dict[str, float]:
        """Scalar view of every metric (counters/gauges/histogram stats)."""
        out: dict[str, float] = {}
        for name in sorted(self._metrics):
            m = self._metrics[name]
            if isinstance(m, Counter):
                out[name] = float(m.value)
            elif isinstance(m, Gauge):
                out[name] = m.value
            elif isinstance(m, Histogram):
                out[f"{name}.count"] = float(m.count)
                out[f"{name}.mean"] = m.mean
                out[f"{name}.p50"] = m.quantile(0.50)
                out[f"{name}.p99"] = m.quantile(0.99)
            elif isinstance(m, P2Quantile):
                out[f"{name}.p{int(m.q * 100)}"] = m.estimate
            elif isinstance(m, WindowSeries):
                out[f"{name}.windows"] = float(len(m._count))
        return out
