"""SLO burn-rate monitoring against per-class deadlines.

Site-reliability practice expresses "are we violating the SLO?" as a
**burn rate**: the fraction of the error budget consumed per unit of
time.  With an attainment objective of, say, 99% of requests inside
their deadline, the error budget is 1% — a window in which 3% of
requests miss burns the budget at 3×, and a sustained burn above a
threshold pages someone.  Here nobody gets paged; instead the monitor
emits typed :class:`SLOAlert` events that tests assert on and future
learned controllers consume as features.

The monitor is windowed on the virtual clock (tumbling windows, same
bucketing as :class:`~repro.obs.metrics.WindowSeries`) and vectorized:
one :meth:`SLOMonitor.observe_many` call per run, fed straight from
``RequestLog`` columns, computes every per-class, per-window burn rate
in NumPy.  Deadlines come from :class:`~repro.serving.classes.RequestClass`
specs when the run is multi-tenant, or from a single scalar SLO
otherwise.  Determinism mirrors the rest of the observability layer:
same inputs, same alerts, oracle or ``--live``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SLOAlert", "SLOMonitor"]


@dataclass(frozen=True)
class SLOAlert:
    """One burn-rate threshold crossing in one window for one class."""

    time_s: float  # window start on the virtual clock
    class_name: str  # RequestClass name, or "default"
    burn_rate: float  # miss_fraction / error_budget for the window
    threshold: float  # configured firing threshold
    window_s: float  # window width
    n_requests: int  # completed requests scored in the window
    n_missed: int  # of which missed their deadline


class SLOMonitor:
    """Computes per-class burn rates over tumbling windows, fires alerts.

    ``objective`` is the attainment target (e.g. 0.99 → 1% error
    budget); ``threshold`` is the burn rate at or above which a window
    fires an alert.  ``deadlines`` maps class code → deadline seconds
    and ``names`` maps class code → class name; single-class runs pass
    ``{0: slo_s}`` and leave names defaulted.
    """

    def __init__(
        self,
        deadlines: dict[int, float],
        names: dict[int, str] | None = None,
        objective: float = 0.99,
        threshold: float = 2.0,
        window_s: float = 0.1,
        t0: float = 0.0,
    ) -> None:
        if not 0.0 < objective < 1.0:
            raise ValueError(f"objective must be in (0, 1), got {objective}")
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        if not deadlines:
            raise ValueError("SLOMonitor needs at least one class deadline")
        self.deadlines = dict(deadlines)
        self.names = dict(names or {})
        self.objective = float(objective)
        self.budget = 1.0 - self.objective
        self.threshold = float(threshold)
        self.window_s = float(window_s)
        self.t0 = float(t0)
        self.alerts: list[SLOAlert] = []
        # class code -> window -> [n_requests, n_missed]
        self._tallies: dict[int, dict[int, list[int]]] = {
            code: {} for code in self.deadlines
        }

    @classmethod
    def from_classes(cls, classes, **kwargs) -> "SLOMonitor":
        """Build from a :class:`~repro.serving.classes.ClassSet`."""
        deadlines = {c: spec.deadline_s for c, spec in enumerate(classes.classes)}
        names = {c: spec.name for c, spec in enumerate(classes.classes)}
        return cls(deadlines, names=names, **kwargs)

    def observe_many(
        self,
        completion_s: np.ndarray,
        sojourn_s: np.ndarray,
        req_class: np.ndarray | None = None,
    ) -> None:
        """Score a column of completed requests (vectorized, one pass).

        Rows with NaN completion are ignored (shed/lost requests don't
        consume budget — they are accounted by the shed-rate series).
        """
        completion_s = np.asarray(completion_s, dtype=np.float64)
        sojourn_s = np.asarray(sojourn_s, dtype=np.float64)
        done = ~np.isnan(completion_s)
        if req_class is None:
            codes = np.zeros(completion_s.shape[0], dtype=np.int64)
        else:
            codes = np.asarray(req_class, dtype=np.int64)
        for code in self.deadlines:
            sel = done & (codes == code)
            if not sel.any():
                continue
            t = completion_s[sel]
            missed = sojourn_s[sel] > self.deadlines[code]
            win = ((t - self.t0) // self.window_s).astype(np.int64)
            tally = self._tallies[code]
            uniq, inv = np.unique(win, return_inverse=True)
            n_per = np.bincount(inv)
            miss_per = np.bincount(inv, weights=missed.astype(np.float64))
            for w, n, m in zip(uniq.tolist(), n_per.tolist(), miss_per.tolist()):
                slot = tally.setdefault(w, [0, 0])
                slot[0] += int(n)
                slot[1] += int(m)

    def burn_rates(self, code: int = 0) -> tuple[np.ndarray, np.ndarray]:
        """(window_start_s, burn_rate) arrays for one class, ascending."""
        tally = self._tallies[code]
        wins = sorted(tally)
        t = self.t0 + np.asarray(wins, dtype=np.float64) * self.window_s
        burn = np.array(
            [tally[w][1] / tally[w][0] / self.budget for w in wins], dtype=np.float64
        )
        return t, burn

    def scan(self, tracer=None) -> list[SLOAlert]:
        """Evaluate every window, fire alerts, return the new ones.

        With a ``tracer``, each alert is also recorded as an ``alert``
        instant event so it shows up on the trace timeline.
        """
        from repro.obs.spans import EV_ALERT

        fired: list[SLOAlert] = []
        for code in sorted(self._tallies):
            tally = self._tallies[code]
            name = self.names.get(code, "default")
            for w in sorted(tally):
                n, missed = tally[w]
                burn = missed / n / self.budget if n else 0.0
                if burn >= self.threshold:
                    alert = SLOAlert(
                        time_s=self.t0 + w * self.window_s,
                        class_name=name,
                        burn_rate=float(burn),
                        threshold=self.threshold,
                        window_s=self.window_s,
                        n_requests=n,
                        n_missed=missed,
                    )
                    fired.append(alert)
                    if tracer is not None:
                        tracer.event(EV_ALERT, alert.time_s)
        self.alerts.extend(fired)
        return fired

    def worst_burn(self, code: int = 0) -> float:
        """Maximum windowed burn rate for one class (0.0 if no windows)."""
        _, burn = self.burn_rates(code)
        return float(burn.max()) if burn.size else 0.0

    def attainment(self, code: int = 0) -> float:
        """Overall fraction of scored requests inside deadline (NaN if none)."""
        tally = self._tallies[code]
        n = sum(v[0] for v in tally.values())
        missed = sum(v[1] for v in tally.values())
        return 1.0 - missed / n if n else float("nan")
