"""The Observer facade: one handle the engines thread through their loops.

Engines don't want three telemetry objects and a pile of conventions —
they want one optional ``obs=`` parameter and a handful of cheap hooks.
:class:`Observer` is that handle.  It owns a
:class:`~repro.obs.spans.Tracer`, a
:class:`~repro.obs.metrics.MetricsRegistry`, and (after finalize) an
:class:`~repro.obs.slo.SLOMonitor`, and exposes the event-loop
touchpoints:

* :meth:`on_batch` — a batch dispatched on a replica (span + queue
  depth + batch-size metrics);
* :meth:`on_event` — a discrete happening (crash, fault, timeout,
  retry, hedge, breaker trip, degrade-mode change, shed, scale);
* :meth:`on_leg` — an offload leg (edge gate, uplink, cloud, downlink).

The overhead contract is the design: every hook is a tuple append, so
a 1M-request run records only ~tens of thousands of sparse rows
in-loop, and :meth:`finalize` merely stashes the finished
``RequestLog`` columns.  Everything *derived* — latency histograms,
window series, burn rates and alerts, the dense per-request span tree
— is synthesized **vectorized** on first read of :attr:`metrics`,
:attr:`slo`, :attr:`alerts`, or :attr:`spans`.  Serve time pays only
for capture; the reader of the telemetry pays for the views.  With
``obs=None`` (the default everywhere) the engines skip the hooks
entirely — the disabled path costs one ``is not None`` test per
touchpoint.

Determinism: all inputs are virtual-clock values produced in event
order, so oracle and ``--live`` replays of the same scenario yield
field-for-field identical spans, metrics, and alerts.
"""

from __future__ import annotations

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SLOMonitor
from repro.obs.spans import (
    EV_BATCH_FAIL,
    EV_BREAKER_TRIP,
    EV_SHED,
    EV_TIMEOUT,
    SPAN_NAMES,
    SpanLog,
    Tracer,
)

__all__ = ["Observer"]

#: Event kinds that count as failure *symptoms* for replica suspicion
#: scoring.  Deliberately excludes the injected fault/crash markers —
#: localization must work from what a production fleet could observe
#: (timeouts, failed batches, breaker trips), not from the fault plan.
_SYMPTOM_KINDS = frozenset((EV_TIMEOUT, EV_BATCH_FAIL, EV_BREAKER_TRIP))


class Observer:
    """Telemetry collector threaded through the simulation event loops.

    Parameters
    ----------
    window_s:
        Tumbling-window width for time series and burn rates.
    objective:
        SLO attainment objective (0.99 → 1% error budget).
    burn_threshold:
        Burn rate at/above which a window fires an :class:`SLOAlert`.
    """

    def __init__(
        self,
        window_s: float = 0.1,
        objective: float = 0.99,
        burn_threshold: float = 2.0,
    ) -> None:
        self.window_s = float(window_s)
        self.objective = float(objective)
        self.burn_threshold = float(burn_threshold)
        self.tracer = Tracer()
        self._metrics = MetricsRegistry(window_s=self.window_s)
        self._slo: SLOMonitor | None = None
        # Per-replica tallies for telemetry-only localization:
        # replica id -> [n_batches, total_batch_seconds, n_fail_events].
        self.replica_stats: dict[int, list[float]] = {}
        # In-loop batch buffer: (start_s, end_s, replica, n, queue_depth)
        # per dispatch; all derived metrics come out vectorized on read.
        self._batch_meta: list[tuple[float, float, int, int, int]] = []
        # Vectorized batch columns preserved across flushes — the
        # resource timelines are derived from these after the run.
        self._batch_arrays: list[np.ndarray] = []
        self._final_args: tuple | None = None
        self._span_args: tuple | None = None
        self._span_log: SpanLog | None = None
        self._finalized = False
        self._derived = False

    # ------------------------------------------------------------------ hooks

    def on_batch(
        self,
        start_s: float,
        end_s: float,
        replica: int,
        n: int,
        queue_depth: int = -1,
    ) -> None:
        """One batch dispatched: two appends; metrics derive at finalize."""
        self.tracer.batch(start_s, end_s, replica)
        self._batch_meta.append((start_s, end_s, replica, n, queue_depth))

    def on_event(self, kind: int, t: float, replica: int = -1, req: int = -1) -> None:
        """One discrete event: instant span row + named counter + series."""
        self.tracer.event(kind, t, replica, req)
        name = SPAN_NAMES[kind]
        self._metrics.counter(f"events.{name}").inc()
        self._metrics.series(f"events.{name}.window").add(t)
        if replica >= 0 and kind in _SYMPTOM_KINDS:
            stats = self.replica_stats.setdefault(replica, [0, 0.0, 0])
            stats[2] += 1

    def on_leg(
        self, kind: int, req: int, start_s: float, end_s: float, replica: int = -1
    ) -> None:
        """One offload leg span (edge gate / uplink / cloud / downlink)."""
        self.tracer.leg(kind, req, start_s, end_s, replica)
        self._metrics.counter(f"legs.{SPAN_NAMES[kind]}").inc()

    def on_shed(self, t: float, n: int = 1) -> None:
        """Requests shed by admission/degradation (series + counter)."""
        self.tracer.event(EV_SHED, t)
        self._metrics.counter("shed").inc(n)
        self._metrics.series("shed.window").add(t, n)

    # -------------------------------------------------------------- finalize

    def finalize(self, log, classes=None, slo_s: float | None = None) -> None:
        """Seal the observer over a finished ``RequestLog``.

        This is O(1): it only stashes the log columns and the SLO
        configuration.  The derived telemetry — sojourn histogram + P²
        sketch, batch and throughput series, SLO burn windows and
        alerts, and the dense per-request span tree — is synthesized
        vectorized on first read of :attr:`metrics`, :attr:`slo`,
        :attr:`alerts`, or :attr:`spans`, so serve time pays only for
        capture.  Single-use: later calls no-op.
        """
        if self._finalized:
            return
        self._finalized = True
        self._final_args = (log, classes, slo_s)

    def _ensure_telemetry(self) -> None:
        """Derive all post-run telemetry from the stashed log (once)."""
        if self._derived or self._final_args is None:
            return
        self._derived = True
        log, classes, slo_s = self._final_args

        arrival = np.asarray(log.arrival_s, dtype=np.float64)
        completion = np.asarray(log.completion_s, dtype=np.float64)
        dispatch = getattr(log, "dispatch_s", None)
        if dispatch is not None:
            dispatch = np.asarray(dispatch, dtype=np.float64)
        replica = getattr(log, "replica_id", None)

        done = ~np.isnan(completion)
        sojourn = completion - arrival
        self._metrics.counter("requests").inc(int(arrival.shape[0]))
        self._metrics.counter("completed").inc(int(done.sum()))
        if done.any():
            self._metrics.histogram("sojourn_s").observe_many(sojourn[done])
            # Cap the sequential P² feed: a 20k strided subsample pins
            # the estimate to within a few percent of the full scan at
            # a fraction of the cost (and stays deterministic).
            samples = sojourn[done]
            step = max(1, samples.shape[0] // 20_000)
            sketch = self._metrics.sketch("sojourn_p99", q=0.99)
            sketch.observe_many(samples[::step])
            self._metrics.series("throughput").add_many(completion[done])
        self._flush_batch_meta()

        if classes is not None:
            self._slo = SLOMonitor.from_classes(
                classes,
                objective=self.objective,
                threshold=self.burn_threshold,
                window_s=self.window_s,
            )
        else:
            deadline = 0.05 if slo_s is None else float(slo_s)
            self._slo = SLOMonitor(
                {0: deadline},
                objective=self.objective,
                threshold=self.burn_threshold,
                window_s=self.window_s,
            )
        codes = getattr(log, "req_class", None) if classes is not None else None
        self._slo.observe_many(completion, sojourn, codes)
        # Scan before the span build so alert rows land in the span log.
        self._slo.scan(self.tracer)
        self._span_args = (arrival, completion, dispatch, replica)

    def _flush_batch_meta(self) -> None:
        """Vectorize the in-loop batch buffer into counters and series."""
        if not self._batch_meta:
            return
        meta = np.array(self._batch_meta, dtype=np.float64)
        self._batch_arrays.append(meta)
        starts, ends, reps, ns, depths = meta.T
        self._metrics.counter("batches").inc(meta.shape[0])
        self._metrics.counter("batched_requests").inc(int(ns.sum()))
        self._metrics.series("batch_size").add_many(starts, ns)
        self._metrics.series("batch_latency_s").add_many(starts, ends - starts)
        known = depths >= 0
        if known.any():
            self._metrics.series("queue_depth").add_many(starts[known], depths[known])
        rids = reps.astype(np.int64)
        lane = rids >= 0
        rids = rids[lane]
        n_by_rid = np.bincount(rids)
        s_by_rid = np.bincount(rids, weights=(ends - starts)[lane])
        for rid in np.nonzero(n_by_rid)[0].tolist():
            stats = self.replica_stats.setdefault(rid, [0, 0.0, 0])
            stats[0] += int(n_by_rid[rid])
            stats[1] += float(s_by_rid[rid])
        self._batch_meta.clear()

    def finalize_arrays(
        self, arrival_s, completion_s, slo_s: float | None = None
    ) -> None:
        """:meth:`finalize` for engines without a ``RequestLog``.

        The offload tier tracks per-request timing in plain arrays;
        this wraps them in the minimal duck-typed log and finalizes.
        """

        class _Cols:
            pass

        cols = _Cols()
        cols.arrival_s = arrival_s
        cols.completion_s = completion_s
        self.finalize(cols, slo_s=slo_s)

    # --------------------------------------------------------------- queries

    @property
    def metrics(self) -> MetricsRegistry:
        """The metrics registry (derives the post-run aggregates once)."""
        self._ensure_telemetry()
        return self._metrics

    @property
    def slo(self) -> SLOMonitor | None:
        """The SLO burn-rate monitor; ``None`` before :meth:`finalize`."""
        self._ensure_telemetry()
        return self._slo

    @property
    def spans(self) -> SpanLog | None:
        """The finalized span log; ``None`` before :meth:`finalize`.

        The dense tree (per-request root/queue/service rows plus the
        recorded sparse rows, parent-linked) is built vectorized on
        first access and cached — reading telemetry pays for it, serve
        time does not.
        """
        self._ensure_telemetry()
        if self._span_log is None and self._span_args is not None:
            self._span_log = self.tracer.finalize(*self._span_args)
        return self._span_log

    @property
    def alerts(self):
        """SLO alerts fired so far (empty before finalize)."""
        slo = self.slo
        return [] if slo is None else slo.alerts

    def batch_arrays(self) -> tuple[np.ndarray, ...] | None:
        """Batch metadata columns: (starts, ends, replicas, sizes, depths).

        The vectorized form of every ``on_batch`` call this run, in
        dispatch order; ``None`` when no batch was recorded.  This is
        the raw feed for :func:`repro.obs.timeline.build_timelines`.
        """
        self._flush_batch_meta()
        if not self._batch_arrays:
            return None
        meta = (
            self._batch_arrays[0]
            if len(self._batch_arrays) == 1
            else np.concatenate(self._batch_arrays, axis=0)
        )
        starts, ends, reps, ns, depths = meta.T
        return starts, ends, reps, ns, depths

    def timelines(self, window_s: float | None = None, cwnd_history=None):
        """Resource-utilization timelines derived from this run's data.

        Builds :class:`~repro.obs.timeline.ResourceTimelines` — per-
        replica busy fraction and queue depth from the batch metadata,
        cache hit rate from the finalized ``RequestLog``, uplink
        occupancy from any offload legs — with zero in-loop cost; the
        derivation is vectorized here at read time.  ``cwnd_history``
        (``(time_s, window)`` samples from a
        :class:`~repro.netsim.transport.SessionTransport`) adds the
        ``uplink.cwnd`` gauge next to the occupancy it explains.
        """
        from repro.obs.timeline import build_timelines

        log = self._final_args[0] if self._final_args is not None else None
        return build_timelines(
            self.window_s if window_s is None else window_s,
            batch_arrays=self.batch_arrays(),
            log=log,
            spans=self.spans,
            cwnd_history=cwnd_history,
        )

    def suspect_replicas(self, top: int = 1) -> list[int]:
        """Replicas ranked most-suspicious from telemetry alone.

        Score = failure-event count, tie-broken by mean batch latency —
        no fault-plan internals consulted.  Requires at least one
        recorded batch.
        """
        self._flush_batch_meta()
        scored = []
        for rid, (n_batches, total_s, n_fail) in self.replica_stats.items():
            mean_s = total_s / n_batches if n_batches else 0.0
            scored.append((n_fail, mean_s, rid))
        scored.sort(reverse=True)
        return [rid for _, _, rid in scored[:top]]

    def summary(self) -> dict[str, float]:
        """Flat scalar snapshot: metrics + span counts + worst burn."""
        out = self.metrics.snapshot()
        if self.spans is not None:
            out["spans"] = float(len(self.spans))
        if self.slo is not None:
            out["worst_burn"] = self.slo.worst_burn()
            out["alerts"] = float(len(self.slo.alerts))
        return out

    def chrome_trace(self, path, max_requests: int = 2000, counters: bool = True) -> int:
        """Export the finalized spans as Chrome trace-event JSON.

        ``max_requests`` caps the per-request lanes (see
        :meth:`SpanLog.to_chrome` — dropped-lane counts land in the
        file's metadata); ``counters=True`` (default) splices the
        resource timelines in as Perfetto counter tracks.
        """
        if self.spans is None:
            raise RuntimeError("call finalize() before exporting a trace")
        extra = self.timelines().counter_events() if counters else None
        return self.spans.to_chrome(path, max_requests=max_requests, counters=extra)
