"""Simulation-native observability: spans, metrics, and SLO burn alerts.

The observability layer gives the virtual-clock serving stack the same
telemetry a production inference fleet has, without leaving the
simulation:

* :mod:`repro.obs.spans` — per-request lifecycle spans (queue wait,
  service, batch, offload legs) and discrete events (crashes, retries,
  breaker trips) in a vectorized SoA :class:`SpanLog`, exportable to
  Chrome trace-event JSON for Perfetto;
* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms,
  P² streaming percentile sketches, and tumbling time-window series;
* :mod:`repro.obs.slo` — per-class SLO burn rates against
  :class:`~repro.serving.classes.RequestClass` deadlines with typed
  threshold alerts;
* :mod:`repro.obs.observer` — the :class:`Observer` facade engines
  accept as an optional ``obs=`` parameter;
* :mod:`repro.obs.prof` — wall-clock phase-attribution profiling of the
  engine hot loops (``prof=`` parameter): hierarchical phase timers, a
  sampling mode, and collapsed-stack/speedscope flamegraph export;
* :mod:`repro.obs.timeline` — virtual-time resource-utilization
  timelines (busy fraction, queue depth, cache hit rate, uplink
  occupancy) derived post-hoc and exportable as Perfetto counter
  tracks.

Everything is deterministic and virtual-clock native: the same scenario
replayed in oracle or ``--live`` mode produces field-for-field
identical telemetry.  Collection is default-off, in-loop hooks are
sparse appends, and the dense per-request artifacts are synthesized
vectorized at finalize — see ``docs/observability.md``.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    P2Quantile,
    WindowSeries,
)
from repro.obs.observer import Observer
from repro.obs.prof import (
    PhaseProfiler,
    PhaseReport,
    PhaseStat,
    SamplingProfiler,
    compare_phase_reports,
    current_profiler,
    enable_global_profiler,
    top_regressing_phase,
)
from repro.obs.slo import SLOAlert, SLOMonitor
from repro.obs.spans import SPAN_NAMES, SpanLog, Tracer
from repro.obs.timeline import ResourceTimelines, build_timelines

__all__ = [
    "Observer",
    "Tracer",
    "SpanLog",
    "SPAN_NAMES",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "P2Quantile",
    "WindowSeries",
    "SLOMonitor",
    "SLOAlert",
    "PhaseProfiler",
    "PhaseReport",
    "PhaseStat",
    "SamplingProfiler",
    "compare_phase_reports",
    "top_regressing_phase",
    "current_profiler",
    "enable_global_profiler",
    "ResourceTimelines",
    "build_timelines",
]
