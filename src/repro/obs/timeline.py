"""Virtual-time resource timelines: utilization derived after the run.

The span lanes answer "what happened to request *i*"; the timelines
answer "how loaded was the *system* over time" — per-replica busy
fraction, queue depth, cache hit rate, uplink occupancy — each a
:class:`~repro.obs.metrics.WindowSeries` sampled on the virtual clock.

Everything here is derived **post-hoc** from telemetry the hot loops
already record (the Observer's batch metadata, the span log's offload
legs, the finished ``RequestLog``), so timelines add zero in-loop cost:
building them is a handful of vectorized passes at read time, the same
contract as the rest of :mod:`repro.obs`.

Export goes two ways: :meth:`ResourceTimelines.table` for asserts and
notebooks, and :meth:`ResourceTimelines.counter_events` for Perfetto —
Chrome trace-event ``"ph": "C"`` counter tracks that render as area
charts under the span lanes (``SpanLog.to_chrome(counters=...)``
splices them into the same file).
"""

from __future__ import annotations

import numpy as np

from repro.obs.metrics import WindowSeries
from repro.obs.spans import SPAN_UPLINK, SpanLog

__all__ = ["ResourceTimelines", "build_timelines"]

#: Perfetto process id for the counter tracks ("resources" lane group);
#: pids 0/1 are the replica/request span lanes in ``SpanLog.to_chrome``.
COUNTER_PID = 2

#: How each timeline reduces a window to one counter value:
#: ``occupancy`` series carry busy-seconds sums (value = sum/window),
#: ``gauge`` series carry sampled levels (value = window mean).
_MODE_OCCUPANCY = "occupancy"
_MODE_GAUGE = "gauge"


class ResourceTimelines:
    """A named bag of utilization series over one simulated run.

    Instances come from :func:`build_timelines` (or
    ``Observer.timelines()``); each named series is a
    :class:`~repro.obs.metrics.WindowSeries` plus a reduction mode that
    says how a window becomes one plotted value.
    """

    def __init__(self, window_s: float) -> None:
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        self.window_s = float(window_s)
        self._series: dict[str, tuple[WindowSeries, str]] = {}

    def __len__(self) -> int:
        return len(self._series)

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def names(self) -> tuple[str, ...]:
        """All timeline names, sorted."""
        return tuple(sorted(self._series))

    def series(self, name: str) -> WindowSeries:
        """The raw :class:`WindowSeries` behind one timeline."""
        return self._series[name][0]

    def _add(self, name: str, mode: str) -> WindowSeries:
        ws = WindowSeries(self.window_s)
        self._series[name] = (ws, mode)
        return ws

    def add_gauge(self, name: str, times_s, values) -> WindowSeries:
        """Add (or extend) a sampled-level series from external telemetry.

        The public hook for layers whose state lives outside the span
        log — e.g. a :class:`~repro.netsim.transport.SessionTransport`'s
        congestion-window history becoming an ``uplink.cwnd`` track.
        Values are window-averaged, like every gauge.
        """
        if name in self._series:
            ws, mode = self._series[name]
            if mode != _MODE_GAUGE:
                raise ValueError(f"timeline {name!r} exists with mode {mode!r}")
        else:
            ws = self._add(name, _MODE_GAUGE)
        ws.add_many(
            np.asarray(times_s, dtype=np.float64),
            np.asarray(values, dtype=np.float64),
        )
        return ws

    def values(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        """(window_starts, values) for one timeline, reduction applied.

        Occupancy series divide each window's busy-seconds by the window
        width (a 1.0 means saturated); gauge series report the window
        mean of the sampled level.
        """
        ws, mode = self._series[name]
        t = ws.windows
        if mode == _MODE_OCCUPANCY:
            return t, ws.sums() / ws.window_s
        return t, ws.means()

    def table(self) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        """Every timeline as ``{name: (window_starts, values)}``."""
        return {name: self.values(name) for name in self.names()}

    def counter_events(self) -> list[dict]:
        """Chrome trace-event counter rows (``"ph": "C"``) for Perfetto.

        One metadata row names the ``pid`` 2 process "resources"; each
        timeline becomes a counter track with one event per non-empty
        window, value as produced by :meth:`values`.  Splice these into
        a span export with ``SpanLog.to_chrome(..., counters=...)`` or
        dump them standalone in a ``{"traceEvents": [...]}`` wrapper.
        """
        events: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": COUNTER_PID,
                "args": {"name": "resources"},
            }
        ]
        for name in self.names():
            times, vals = self.values(name)
            for t, v in zip(times.tolist(), vals.tolist()):
                events.append(
                    {
                        "name": name,
                        "ph": "C",
                        "ts": t * 1e6,
                        "pid": COUNTER_PID,
                        "args": {"value": float(v)},
                    }
                )
        return events


def build_timelines(
    window_s: float = 0.1,
    *,
    batch_arrays: tuple[np.ndarray, ...] | None = None,
    log=None,
    spans: SpanLog | None = None,
    cwnd_history=None,
) -> ResourceTimelines:
    """Derive utilization timelines from already-captured telemetry.

    Parameters
    ----------
    window_s:
        Tumbling-window width on the virtual clock.
    batch_arrays:
        ``(starts, ends, replicas, sizes, depths)`` columns over every
        dispatched batch (``Observer.batch_arrays()``).  Produces
        ``replica<r>.busy_frac`` (occupancy: batch-busy seconds per
        window over window width) and ``replica<r>.queue_depth`` (gauge:
        mean queue depth sampled at dispatch; depths < 0 mean
        "unknown" and are skipped).
    log:
        A finished ``RequestLog``; produces ``cache_hit_rate`` (gauge:
        fraction of arrivals in the window answered from cache) when the
        log carries ``route`` and ``arrival_s`` columns.
    spans:
        A finalized :class:`SpanLog`; produces ``uplink.occupancy``
        (occupancy over the offload uplink transfer legs) when uplink
        spans are present.
    cwnd_history:
        ``[(time_s, window), ...]`` samples from a
        :class:`~repro.netsim.transport.SessionTransport`; produces
        ``uplink.cwnd`` (gauge: mean congestion window per window) —
        the track that shows AIMD sawtooths collapsing under a network
        storm next to the occupancy they explain.

    All inputs are optional — pass what the run recorded; absent inputs
    simply contribute no series.
    """
    tl = ResourceTimelines(window_s)

    if batch_arrays is not None:
        starts, ends, reps, _ns, depths = (
            np.asarray(col, dtype=np.float64) for col in batch_arrays
        )
        busy = ends - starts
        rids = reps.astype(np.int64)
        for rid in np.unique(rids[rids >= 0]).tolist():
            mask = rids == rid
            tl._add(f"replica{rid}.busy_frac", _MODE_OCCUPANCY).add_many(
                starts[mask], busy[mask]
            )
            known = mask & (depths >= 0)
            if known.any():
                tl._add(f"replica{rid}.queue_depth", _MODE_GAUGE).add_many(
                    starts[known], depths[known]
                )

    if log is not None:
        route = getattr(log, "route", None)
        arrival = getattr(log, "arrival_s", None)
        if route is not None and arrival is not None:
            from repro.sim.records import ROUTE_CACHED

            arrival = np.asarray(arrival, dtype=np.float64)
            hits = (np.asarray(route) == ROUTE_CACHED).astype(np.float64)
            tl._add("cache_hit_rate", _MODE_GAUGE).add_many(arrival, hits)

    if spans is not None:
        up = np.asarray(spans.kind) == SPAN_UPLINK
        if up.any():
            s = np.asarray(spans.start_s, dtype=np.float64)[up]
            e = np.asarray(spans.end_s, dtype=np.float64)[up]
            tl._add("uplink.occupancy", _MODE_OCCUPANCY).add_many(s, e - s)

    if cwnd_history:
        hist = np.asarray(cwnd_history, dtype=np.float64)
        tl.add_gauge("uplink.cwnd", hist[:, 0], hist[:, 1])

    return tl
