"""Minimal logging facade: one place to configure library verbosity."""

from __future__ import annotations

import logging
import os
import sys

__all__ = ["get_logger", "set_verbosity"]

_ROOT_NAME = "repro"
_configured = False


def _configure_root() -> None:
    global _configured
    if _configured:
        return
    root = logging.getLogger(_ROOT_NAME)
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(
        logging.Formatter("[%(asctime)s] %(name)s %(levelname)s: %(message)s", "%H:%M:%S")
    )
    root.addHandler(handler)
    level = os.environ.get("REPRO_LOG_LEVEL", "WARNING").upper()
    root.setLevel(getattr(logging, level, logging.WARNING))
    root.propagate = False
    _configured = True


def get_logger(name: str) -> logging.Logger:
    """Return a child logger under the ``repro`` namespace."""
    _configure_root()
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def set_verbosity(level: int | str) -> None:
    """Set library-wide log level (e.g. ``"INFO"`` or ``logging.DEBUG``).

    String levels must name a standard logging level (case-insensitive);
    unknown names raise :class:`ValueError` listing the valid choices.
    """
    _configure_root()
    if isinstance(level, str):
        resolved = getattr(logging, level.upper(), None)
        if not isinstance(resolved, int):
            valid = ", ".join(
                name for name in ("DEBUG", "INFO", "WARNING", "ERROR", "CRITICAL")
            )
            raise ValueError(f"unknown log level {level!r}; expected one of: {valid}")
        level = resolved
    logging.getLogger(_ROOT_NAME).setLevel(level)
