"""Wall-clock timing helpers used by the evaluation harness.

Real (NumPy) execution times back the pytest-benchmark suites; the
*simulated* device latencies live in :mod:`repro.hw.latency`.  Keeping the
two separate makes it explicit which numbers are measured and which are
modelled.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, TypeVar

T = TypeVar("T")

__all__ = ["Timer", "timed", "repeat_timed"]


@dataclass
class Timer:
    """Accumulating stopwatch.

    >>> t = Timer()
    >>> with t:
    ...     _ = sum(range(10))
    >>> t.elapsed > 0
    True
    """

    elapsed: float = 0.0
    laps: list[float] = field(default_factory=list)
    _start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None, "Timer.__exit__ without __enter__"
        lap = time.perf_counter() - self._start
        self.laps.append(lap)
        self.elapsed += lap
        self._start = None

    @property
    def mean(self) -> float:
        return self.elapsed / len(self.laps) if self.laps else 0.0

    def reset(self) -> None:
        self.elapsed = 0.0
        self.laps.clear()
        self._start = None


@contextmanager
def timed(sink: Callable[[float], None]) -> Iterator[None]:
    """Context manager that reports elapsed seconds to ``sink``."""
    start = time.perf_counter()
    try:
        yield
    finally:
        sink(time.perf_counter() - start)


def repeat_timed(fn: Callable[[], T], repeats: int = 3) -> tuple[T, float]:
    """Run ``fn`` ``repeats`` times; return (last result, mean seconds).

    Mirrors the paper's protocol of averaging three runs per experiment.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    total = 0.0
    result: T | None = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        total += time.perf_counter() - start
    return result, total / repeats  # type: ignore[return-value]
