"""Deterministic random-number plumbing.

Every stochastic component in the library (dataset synthesis, weight
initialization, shuffling, target pairing) receives an explicit
:class:`numpy.random.Generator`.  Nothing touches the legacy global NumPy
RNG, so experiments are reproducible bit-for-bit from a single seed and
remain reproducible when stages run in parallel worker processes (each
worker gets an independently spawned child generator).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["SeedSequence", "as_generator", "spawn_rng", "derive_seed"]

# Re-exported so callers do not need to import numpy.random directly.
SeedSequence = np.random.SeedSequence


def as_generator(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` produces a non-deterministic generator (fresh OS entropy); an
    ``int`` produces a deterministic PCG64 stream; an existing generator is
    passed through unchanged so callers can thread one RNG through a
    pipeline.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Spawn ``n`` statistically independent child generators from ``rng``.

    Used when fanning work out to parallel workers: the parent stream stays
    untouched and each worker's stream is independent, so results do not
    depend on scheduling order.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]


def derive_seed(base_seed: int, *components: int | str) -> int:
    """Derive a stable sub-seed from a base seed and a path of components.

    Gives stages of a pipeline (e.g. ``(seed, "fmnist", "train")``) distinct
    but reproducible streams without manual seed arithmetic.
    """
    entropy: list[int] = [int(base_seed) & 0xFFFFFFFF]
    for comp in components:
        if isinstance(comp, str):
            entropy.append(hash_string(comp))
        else:
            entropy.append(int(comp) & 0xFFFFFFFF)
    return int(np.random.SeedSequence(entropy).generate_state(1)[0])


def hash_string(text: str) -> int:
    """Deterministic 32-bit FNV-1a hash (Python's ``hash`` is salted)."""
    h = 0x811C9DC5
    for byte in text.encode("utf-8"):
        h ^= byte
        h = (h * 0x01000193) & 0xFFFFFFFF
    return h


def stratified_indices(
    labels: Sequence[int] | np.ndarray,
    fraction: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Pick a ``fraction``-sized subset of indices preserving class balance.

    Used by the scalability experiments (Figs 6-8), which require "the
    proportion of hard test images used in each experiment remained roughly
    the same" — stratification over any per-sample label achieves that.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    labels = np.asarray(labels)
    chosen: list[np.ndarray] = []
    for value in np.unique(labels):
        idx = np.flatnonzero(labels == value)
        k = max(1, int(round(fraction * idx.size)))
        chosen.append(rng.choice(idx, size=min(k, idx.size), replace=False))
    out = np.concatenate(chosen)
    rng.shuffle(out)
    return out
