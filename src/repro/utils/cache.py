"""Disk caching for expensive artifacts (trained models, labelled datasets).

Experiments share trained substrates: Table II, Fig 5, and Figs 6-8 all
need the same trained BranchyNet/CBNet per dataset.  The cache keys on a
stable hash of the experiment configuration so a full benchmark session
trains each pipeline exactly once.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Callable, TypeVar

F = TypeVar("F", bound=Callable[..., Any])

__all__ = ["stable_hash", "ArtifactCache", "memoize_to_disk", "default_cache_dir"]


def default_cache_dir() -> Path:
    """Resolve the artifact cache directory (override: ``REPRO_CACHE_DIR``)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path(tempfile.gettempdir()) / "repro-cache"


def stable_hash(obj: Any) -> str:
    """Deterministic hash of a JSON-serializable configuration object."""
    blob = json.dumps(_jsonable(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:20]


def _jsonable(obj: Any) -> Any:
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if hasattr(obj, "__dict__"):
        return {"__class__": type(obj).__name__, **_jsonable(vars(obj))}
    return repr(obj)


class ArtifactCache:
    """Pickle-backed artifact store keyed by configuration hash."""

    def __init__(self, root: Path | str | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: Any) -> Path:
        return self.root / f"{stable_hash(key)}.pkl"

    def get(self, key: Any) -> Any | None:
        path = self.path_for(key)
        if not path.exists():
            return None
        try:
            with path.open("rb") as fh:
                return pickle.load(fh)
        except (pickle.UnpicklingError, EOFError, OSError):
            # A corrupt cache entry (e.g. interrupted write) is treated as
            # a miss; the artifact is recomputed and rewritten atomically.
            return None

    def put(self, key: Any, value: Any) -> Path:
        path = self.path_for(key)
        tmp = path.with_suffix(".tmp")
        with tmp.open("wb") as fh:
            pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
        tmp.replace(path)  # atomic on POSIX: readers never see partial files
        return path

    def get_or_compute(self, key: Any, compute: Callable[[], Any]) -> Any:
        found = self.get(key)
        if found is not None:
            return found
        value = compute()
        self.put(key, value)
        return value


def memoize_to_disk(fn: F) -> F:
    """Decorator: cache ``fn(*args, **kwargs)`` results on disk.

    Arguments must be JSON-serializable (configs/seeds), which is true for
    every experiment entry point in :mod:`repro.experiments`.
    """
    cache = ArtifactCache()

    @functools.wraps(fn)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        key = {"fn": f"{fn.__module__}.{fn.__qualname__}", "args": args, "kwargs": kwargs}
        return cache.get_or_compute(key, lambda: fn(*args, **kwargs))

    return wrapper  # type: ignore[return-value]
