"""Shared utilities: deterministic RNG plumbing, timing, logging, caching."""

from repro.utils.rng import SeedSequence, spawn_rng, as_generator
from repro.utils.timing import Timer, timed
from repro.utils.logging import get_logger
from repro.utils.cache import memoize_to_disk, ArtifactCache

__all__ = [
    "SeedSequence",
    "spawn_rng",
    "as_generator",
    "Timer",
    "timed",
    "get_logger",
    "memoize_to_disk",
    "ArtifactCache",
]
