"""Session transport: AIMD-paced, session-riding transfers on a shared link.

This is where the three netsim pieces meet the data path.  A
:class:`SessionTransport` owns one device's
:class:`~repro.netsim.session.LinkSession` and
:class:`~repro.netsim.congestion.AIMDController` and moves payloads
over a :class:`~repro.netsim.shared.SharedLink` in self-clocked
*flights*: up to ``cwnd`` MTU-sized segments reserve the shared
serializer, the ack returns one RTT after the flight ends, and the next
flight launches on the ack — so uplink throughput is
``≈ cwnd·mtu/rtt``, an *emergent* quantity that grows additively while
the link is clean and halves on loss, rather than a preset.

The engine is **stepwise** so a fleet simulator can interleave many
devices on the virtual clock: :meth:`start` arms a transfer, then each
:meth:`advance` performs at most one handshake or one flight and
returns ``("wait", t_next)`` until it returns ``("done", delivered_s)``.
:meth:`send` is the synchronous convenience loop for single-device use.

Loss discipline (the invariant the chaos harness asserts): segment loss
is sampled **only while** the bytes already sent plus the flight in the
air stay within ``(max_attempts - 1) × n_bytes``; past that budget
flights are deemed delivered (the same "transfers always deliver within
budget" discipline as :meth:`repro.hw.network.NetworkLink.transfer`),
which makes retransmit amplification *hard-bounded* by
``max_attempts`` — no pathological storm can exceed it.  A carrier drop
(flap or outage onset) inside a flight's window presumes the whole
flight lost, throws the session back to CLOSED, and the transfer
resumes after renegotiation — under whatever MTU the new conf-ack
lands, so mid-flight renegotiation genuinely re-segments the payload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.netsim.congestion import AIMDConfig, AIMDController
from repro.netsim.session import ESTABLISHED, LinkSession, SessionConfig
from repro.netsim.shared import SharedLink
from repro.utils.rng import as_generator

__all__ = ["SessionTransfer", "SessionTransport"]


@dataclass(frozen=True)
class SessionTransfer:
    """Outcome of one session-riding uplink transfer.

    ``sent_bytes`` counts every byte that occupied the serializer
    (originals + retransmits); :attr:`amplification` is its ratio to
    the payload — hard-bounded by the transport's ``max_attempts``.
    ``handshakes`` counts session (re)establishments the transfer paid
    for, ``flap_resumes`` how many of those were forced by carrier
    drops mid-flight.  ``delivered_s`` is when the last segment reaches
    the far side; ``ack_s`` when the sender learns of it.
    """

    n_bytes: int
    n_segments: int
    sent_bytes: int
    retx_bytes: int
    retx_segments: int
    flights: int
    timeouts: int
    handshakes: int
    flap_resumes: int
    start_s: float
    delivered_s: float
    ack_s: float
    tx_s: float

    @property
    def amplification(self) -> float:
        """Bytes on the wire per payload byte (1.0 = no retransmits)."""
        return self.sent_bytes / self.n_bytes if self.n_bytes else 1.0


class SessionTransport:
    """One device's stateful uplink onto a :class:`SharedLink`.

    Owns the session FSM, the AIMD window, and the in-flight transfer
    state.  All sampling (segment loss, handshake loss, jitter) draws
    from the caller-provided stream, so storms replay identically in
    oracle and ``--live`` modes.  ``obs`` (optional) is a
    :class:`~repro.obs.observer.Observer`-like object receiving
    ``EV_SESSION``/``EV_CWND`` instants; ``cwnd_history`` accumulates
    ``(time_s, window)`` samples for the uplink timeline.
    """

    def __init__(
        self,
        link: SharedLink,
        rng=None,
        wanted: SessionConfig | None = None,
        aimd: AIMDConfig | None = None,
        max_attempts: int = 8,
        obs=None,
        device_id: int = -1,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.link = link
        self.rng = as_generator(rng)
        self.session = LinkSession(link, wanted=wanted, rng=self.rng)
        self.aimd = AIMDController(aimd)
        self.max_attempts = max_attempts
        self.obs = obs
        self.device_id = device_id
        self.cwnd_history: list[tuple[float, int]] = []
        self.n_transfers = 0
        self.n_flap_resumes = 0
        self._active = False
        # Carrier watermark: the last instant the link was known alive.
        # Flaps/outage onsets between transfers still kill the session —
        # the next advance() notices and pays a fresh handshake.
        self._seen_s = 0.0
        self.result: SessionTransfer | None = None

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def _event(self, kind_name: str, time_s: float, req: int = -1) -> None:
        if self.obs is None:
            return
        from repro.obs.spans import EV_CWND, EV_SESSION

        kind = EV_SESSION if kind_name == "session" else EV_CWND
        self.obs.on_event(kind, time_s, self.device_id, req)

    def _sample_cwnd(self, time_s: float) -> None:
        self.cwnd_history.append((time_s, self.aimd.window))

    # ------------------------------------------------------------------ #
    # stepwise transfer engine
    # ------------------------------------------------------------------ #
    def start(self, n_bytes: int, time_s: float) -> None:
        """Arm a transfer; drive it with :meth:`advance`."""
        if self._active:
            raise RuntimeError("a transfer is already in flight on this transport")
        if n_bytes <= 0:
            raise ValueError(f"n_bytes must be positive, got {n_bytes}")
        self._active = True
        self.result = None
        self._n_bytes = int(n_bytes)
        self._remaining = int(n_bytes)
        self._sent = 0
        self._retx = 0
        self._retx_seg = 0
        self._flights = 0
        self._timeouts = 0
        self._handshakes = 0
        self._flap_resumes = 0
        self._tx = 0.0
        self._start_s = float(time_s)
        self._checked_s = float(time_s)

    def advance(self, now: float) -> tuple[str, float]:
        """Perform one handshake or one flight from ``now``.

        Returns ``("wait", t_next)`` — call again at ``t_next`` — or
        ``("done", delivered_s)`` with :attr:`result` populated.
        """
        if not self._active:
            raise RuntimeError("no transfer armed; call start() first")
        if self.session.state == ESTABLISHED and self.link.carrier_drop_in(
            self._seen_s, now
        ):
            # The carrier flapped while the session sat idle: it is dead
            # on arrival, and the transfer below pays a renegotiation.
            self.session.carrier_lost(now)
            self._event("session", now)
        self._seen_s = max(self._seen_s, now)
        if self.session.state != ESTABLISHED:
            t0 = self.link.available_at(now)
            established = self.session.open(t0)
            self._handshakes += 1
            self._checked_s = established
            self._seen_s = max(self._seen_s, established)
            self._event("session", established)
            if established > now:
                return ("wait", established)
            now = established
        return self._flight(now)

    def _flight(self, now: float) -> tuple[str, float]:
        link, aimd = self.link, self.aimd
        mtu = self.session.config.mtu_bytes
        remaining_seg = max(1, math.ceil(self._remaining / mtu))
        flight_seg = min(aimd.window, remaining_seg)
        flight_bytes = min(flight_seg * mtu, self._remaining)
        start, end = link.reserve(flight_bytes, now, "up")
        ack_t = end + link.rtt_s
        self._flights += 1
        self._sent += flight_bytes
        self._tx += end - start
        # Hard amplification bound: past the budget, flights are deemed
        # delivered (link-layer assumed reliable), so sent_bytes can
        # never exceed max_attempts * n_bytes.
        may_lose = self._sent <= (self.max_attempts - 1) * self._n_bytes
        if may_lose and link.carrier_drop_in(self._checked_s, ack_t):
            # The flight is presumed lost and the session dropped with
            # it: renegotiate, then resume under the new MTU.
            self._retx += flight_bytes
            self._retx_seg += flight_seg
            self._checked_s = ack_t
            self._seen_s = max(self._seen_s, ack_t)
            self.session.carrier_lost(ack_t)
            self.n_flap_resumes += 1
            self._flap_resumes += 1
            self._event("session", ack_t)
            self._sample_cwnd(ack_t)
            return ("wait", ack_t)
        self._checked_s = ack_t
        self._seen_s = max(self._seen_s, ack_t)
        lost = 0
        if may_lose:
            p = link.loss_at(start)
            if p > 0.0:
                lost = int(self.rng.binomial(flight_seg, p))
        if lost >= flight_seg:
            # Whole flight vanished: retransmission timeout, window to 1.
            self._retx += flight_bytes
            self._retx_seg += flight_seg
            self._timeouts += 1
            aimd.on_timeout()
            self._event("cwnd", end)
            self._sample_cwnd(end)
            return ("wait", end + aimd.rto_s(link.rtt_s))
        delivered = flight_seg - lost
        if lost > 0:
            self._retx += lost * mtu
            self._retx_seg += lost
            aimd.on_loss()
            self._event("cwnd", ack_t)
        else:
            aimd.on_ack(delivered)
        self._sample_cwnd(ack_t)
        self._remaining = max(0, self._remaining - delivered * mtu)
        if self._remaining > 0:
            return ("wait", ack_t)
        delivered_s = end + link.rtt_s / 2.0
        if link.jitter_s > 0.0:
            delivered_s += float(self.rng.exponential(link.jitter_s))
        self._finish(delivered_s, delivered_s + link.rtt_s / 2.0, mtu)
        return ("done", delivered_s)

    def _finish(self, delivered_s: float, ack_s: float, mtu: int) -> None:
        self.result = SessionTransfer(
            n_bytes=self._n_bytes,
            n_segments=math.ceil(self._n_bytes / mtu),
            sent_bytes=self._sent,
            retx_bytes=self._retx,
            retx_segments=self._retx_seg,
            flights=self._flights,
            timeouts=self._timeouts,
            handshakes=self._handshakes,
            flap_resumes=self._flap_resumes,
            start_s=self._start_s,
            delivered_s=delivered_s,
            ack_s=ack_s,
            tx_s=self._tx,
        )
        self._active = False
        self.n_transfers += 1

    def send(self, n_bytes: int, time_s: float) -> SessionTransfer:
        """Synchronous transfer: loop :meth:`advance` to completion."""
        self.start(n_bytes, time_s)
        now = time_s
        while True:
            status, t_next = self.advance(now)
            if status == "done":
                return self.result
            now = t_next

    def send_down(self, n_bytes: int, time_s: float) -> float:
        """Deliver a cloud→edge payload; return its arrival instant.

        The downlink is the fat direction in every preset, so it stays
        a plain serializer reservation (congestion control models the
        contended *uplink*): one reservation plus half an RTT and
        sampled jitter.
        """
        _, end = self.link.reserve(n_bytes, time_s, "down")
        arrival = end + self.link.rtt_s / 2.0
        if self.link.jitter_s > 0.0:
            arrival += float(self.rng.exponential(self.link.jitter_s))
        return arrival

    # ------------------------------------------------------------------ #
    # deterministic planning estimate
    # ------------------------------------------------------------------ #
    def estimate_s(self, n_bytes: int, time_s: float) -> float:
        """Expected uplink delivery time from ``time_s`` (no sampling).

        The honest congestion signal for :class:`DeadlineAware`: the
        serializer backlog, any outage deferral, handshake rounds if
        the session is down, loss-inflated serialization at the current
        degradation scale, one RTT per flight at the *current* AIMD
        window, and the mean jitter.  Everything is read from live
        state, so the estimate collapses exactly when the link does.
        """
        link = self.link
        t0 = link.available_at(max(time_s, link.free_at("up")))
        est = t0 - time_s
        if self.session.state != ESTABLISHED:
            rounds = 2 if self.session.negotiate(t0) != self.session.wanted else 1
            est += rounds * link.rtt_s
            mtu = self.session.negotiate(t0).mtu_bytes
        else:
            mtu = self.session.config.mtu_bytes
        p = link.loss_at(t0)
        n_seg = max(1, math.ceil(n_bytes / mtu))
        n_flights = math.ceil(n_seg / self.aimd.window)
        est += link.serialization_s(n_bytes, t0, "up") / (1.0 - p)
        est += n_flights * link.rtt_s
        est += link.rtt_s / 2.0 + link.jitter_s
        return est

    def estimate_down_s(self, n_bytes: int, time_s: float) -> float:
        """Expected downlink delivery time from ``time_s`` (no sampling)."""
        link = self.link
        t0 = link.available_at(max(time_s, link.free_at("down")))
        return (
            (t0 - time_s)
            + link.serialization_s(n_bytes, t0, "down")
            + link.rtt_s / 2.0
            + link.jitter_s
        )
