"""Network fault plans: seeded, replayable chaos for the edge↔cloud link.

The cluster layer's :class:`~repro.faults.plan.FaultPlan` injects typed
replica faults; this module is its *network* twin.  A
:class:`LinkFaultPlan` drives one link's state over virtual time with
three fault kinds:

* ``outage`` — the link is cut over a window: nothing transmits,
  transfers defer to the window's end, and every established session
  loses carrier (it must renegotiate);
* ``degrade`` — a window of reduced bandwidth (``bandwidth_scale``)
  and/or elevated loss (``loss_add``) — the "walking into the parking
  garage" mode that makes AIMD windows shrink and deadline policies
  fall back local;
* ``flap`` — an instantaneous carrier blip: the link itself is fine a
  moment later, but sessions drop and must re-run their conf-req /
  conf-ack handshake (mid-flight transfers resume after renegotiation).

Window validation is shared with :class:`~repro.hw.network.NetworkLink`
via :func:`repro.faults.plan.validate_windows` — one validator, one
error type, for every layer that declares time windows.  Plans carry a
``seed`` for the in-run sampling stream, mirroring ``FaultPlan``:
replays are identical in oracle and ``--live`` modes because nothing
here touches model inference.

:func:`link_storm` samples one randomized mixed storm per seed — the
generator the netchaos harness replays across ≥10 seeds.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro.faults.plan import validate_windows
from repro.utils.rng import as_generator

__all__ = [
    "OUTAGE",
    "DEGRADE",
    "FLAP",
    "LinkFault",
    "LinkFaultPlan",
    "outage_window",
    "degradation_window",
    "flap_at",
    "link_storm",
]

OUTAGE = "outage"
DEGRADE = "degrade"
FLAP = "flap"

_KINDS = (OUTAGE, DEGRADE, FLAP)


@dataclass(frozen=True)
class LinkFault:
    """One typed link-state change over ``[start_s, end_s)``.

    ``flap`` faults are instantaneous (``end_s == start_s``);
    ``bandwidth_scale``/``loss_add`` only matter for ``degrade``
    windows (scale multiplies the nominal bandwidth, ``loss_add`` adds
    to the per-segment loss probability while the window is active).
    """

    kind: str
    start_s: float
    end_s: float
    bandwidth_scale: float = 1.0
    loss_add: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        if self.start_s < 0:
            raise ValueError(f"fault start must be >= 0, got {self.start_s}")
        if self.kind == FLAP:
            if self.end_s != self.start_s:
                raise ValueError(
                    f"a flap is instantaneous: end_s ({self.end_s}) must equal "
                    f"start_s ({self.start_s})"
                )
        elif self.end_s <= self.start_s:
            raise ValueError(
                f"{self.kind} window ({self.start_s}, {self.end_s}) must have "
                "end > start"
            )
        if not 0.0 < self.bandwidth_scale <= 1.0:
            raise ValueError(
                f"bandwidth_scale must be in (0, 1], got {self.bandwidth_scale}"
            )
        if not 0.0 <= self.loss_add < 1.0:
            raise ValueError(f"loss_add must be in [0, 1), got {self.loss_add}")


def outage_window(at_s: float, duration_s: float) -> LinkFault:
    """The link cut outright over one window (sessions lose carrier)."""
    if duration_s <= 0:
        raise ValueError(f"outage duration must be positive, got {duration_s}")
    return LinkFault(OUTAGE, at_s, at_s + duration_s)


def degradation_window(
    at_s: float,
    duration_s: float,
    bandwidth_scale: float = 1.0,
    loss_add: float = 0.0,
) -> LinkFault:
    """Reduced bandwidth and/or elevated loss over one window."""
    if duration_s <= 0:
        raise ValueError(f"degradation duration must be positive, got {duration_s}")
    return LinkFault(
        DEGRADE, at_s, at_s + duration_s, bandwidth_scale=bandwidth_scale,
        loss_add=loss_add,
    )


def flap_at(at_s: float) -> LinkFault:
    """An instantaneous carrier blip: sessions drop, the link survives."""
    return LinkFault(FLAP, at_s, at_s)


@dataclass(frozen=True)
class LinkFaultPlan:
    """One seeded, replayable network storm for a single link.

    Outage and degrade windows must each be sorted and non-overlapping
    (validated by the shared :func:`~repro.faults.plan.validate_windows`
    — the same discipline :class:`~repro.hw.network.NetworkLink`
    enforces on its static ``outages``); flaps are sorted instants.
    ``seed`` names the dedicated stream the transports sample loss and
    jitter from, so one integer reproduces the storm *and* its in-run
    sampling — identical in oracle and ``--live`` modes.
    """

    faults: tuple[LinkFault, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        by_kind: dict[str, list[LinkFault]] = {k: [] for k in _KINDS}
        for fault in self.faults:
            by_kind[fault.kind].append(fault)
        for kind in (OUTAGE, DEGRADE):
            by_kind[kind].sort(key=lambda f: f.start_s)
            validate_windows(
                [(f.start_s, f.end_s) for f in by_kind[kind]],
                what=kind if kind == OUTAGE else "degradation",
                owner="link fault plan",
            )
        by_kind[FLAP].sort(key=lambda f: f.start_s)
        ordered = tuple(
            sorted(self.faults, key=lambda f: (f.start_s, _KINDS.index(f.kind)))
        )
        object.__setattr__(self, "faults", ordered)
        object.__setattr__(
            self, "_outages", tuple((f.start_s, f.end_s) for f in by_kind[OUTAGE])
        )
        object.__setattr__(self, "_degrades", tuple(by_kind[DEGRADE]))
        object.__setattr__(
            self, "_flaps", tuple(f.start_s for f in by_kind[FLAP])
        )

    def __bool__(self) -> bool:
        return bool(self.faults)

    @property
    def outages(self) -> tuple[tuple[float, float], ...]:
        """The declared outage windows, sorted and disjoint."""
        return self._outages  # type: ignore[attr-defined]

    def available_at(self, time_s: float) -> float:
        """Earliest instant >= ``time_s`` outside every outage window."""
        for start, end in self._outages:  # type: ignore[attr-defined]
            if time_s < start:
                break
            if time_s < end:
                time_s = end
        return time_s

    def bandwidth_scale_at(self, time_s: float) -> float:
        """Degradation bandwidth multiplier in effect at ``time_s``."""
        for fault in self._degrades:  # type: ignore[attr-defined]
            if fault.start_s <= time_s < fault.end_s:
                return fault.bandwidth_scale
            if fault.start_s > time_s:
                break
        return 1.0

    def loss_add_at(self, time_s: float) -> float:
        """Extra per-segment loss probability in effect at ``time_s``."""
        for fault in self._degrades:  # type: ignore[attr-defined]
            if fault.start_s <= time_s < fault.end_s:
                return fault.loss_add
            if fault.start_s > time_s:
                break
        return 0.0

    def carrier_drop_in(self, t0: float, t1: float) -> bool:
        """Whether carrier is lost anywhere in ``(t0, t1]``.

        True when a flap instant or an outage *onset* falls inside the
        interval — the signal that drops every established session (the
        transfer in the air is presumed lost; the transport renegotiates
        and resumes).
        """
        flaps = self._flaps  # type: ignore[attr-defined]
        idx = bisect_right(flaps, t0)
        if idx < len(flaps) and flaps[idx] <= t1:
            return True
        return any(t0 < start <= t1 for start, _ in self._outages)  # type: ignore[attr-defined]


def link_storm(
    horizon_s: float,
    rng=None,
    outages: float = 1.0,
    degrades: float = 2.0,
    flaps: float = 2.0,
    mean_window_s: float | None = None,
    degrade_scale: tuple[float, float] = (0.05, 0.4),
    degrade_loss: tuple[float, float] = (0.05, 0.3),
) -> LinkFaultPlan:
    """Sample one randomized mixed network storm (seed-deterministic).

    ``outages``/``degrades``/``flaps`` are Poisson means over the
    horizon; window durations are exponential around ``mean_window_s``
    (default: a tenth of the horizon), with same-kind windows spaced so
    the sorted-and-disjoint invariant holds by construction.  The plan's
    ``seed`` is drawn from the same stream, so one integer reproduces
    the storm and its in-run sampling.
    """
    if horizon_s <= 0:
        raise ValueError(f"horizon_s must be positive, got {horizon_s}")
    rng = as_generator(rng)
    mean_window_s = horizon_s / 10.0 if mean_window_s is None else float(mean_window_s)
    faults: list[LinkFault] = []

    def windows(mean_count: float) -> list[tuple[float, float]]:
        n = int(rng.poisson(mean_count))
        starts = sorted(float(rng.uniform(0.0, horizon_s)) for _ in range(n))
        spans = []
        for i, at in enumerate(starts):
            limit = starts[i + 1] if i + 1 < len(starts) else horizon_s + mean_window_s
            duration = min(
                max(1e-6, float(rng.exponential(mean_window_s))),
                max(1e-6, limit - at - 1e-9),
            )
            spans.append((at, duration))
        return spans

    for at, duration in windows(outages):
        faults.append(outage_window(at, duration))
    for at, duration in windows(degrades):
        faults.append(
            degradation_window(
                at,
                duration,
                bandwidth_scale=float(rng.uniform(*degrade_scale)),
                loss_add=float(rng.uniform(*degrade_loss)),
            )
        )
    for _ in range(int(rng.poisson(flaps))):
        faults.append(flap_at(float(rng.uniform(0.0, horizon_s))))
    return LinkFaultPlan(
        faults=tuple(faults), seed=int(rng.integers(2**31 - 1))
    )
