"""Shared links: many edge devices multiplexed over one cell/backhaul.

:class:`~repro.hw.network.NetworkLink` is private to a single edge
radio.  A :class:`SharedLink` is the *tower side*: one serializer per
direction that every attached device's transport reserves flights on,
first-come-first-served on the virtual clock.  Contention is therefore
emergent — nothing allocates "fair shares"; devices interleave flights
because each one's RTT gap leaves the serializer free for the others,
and AIMD windows converge toward the classic per-flow fair share on
their own (asserted in the netsim tests).

The shared link also owns the network's *state over time*: static
``outages`` windows and a :class:`~repro.hw.network.BandwidthTrace`
(same semantics as ``NetworkLink``, validated by the same shared
validator), plus an optional :class:`~repro.netsim.faults.LinkFaultPlan`
layering seeded outage/degrade/flap chaos on top.  Sessions ask it for
the current MTU cap and codec set during conf-req/conf-nak negotiation;
transports ask it for loss, scale, and carrier drops.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.plan import validate_windows
from repro.hw.network import BandwidthTrace, NetworkLink
from repro.netsim.faults import LinkFaultPlan

__all__ = ["SharedLink"]


@dataclass
class SharedLink:
    """One contended edge↔cloud bottleneck shared by a device fleet.

    Mutable on purpose: ``up_free_s``/``down_free_s`` are the
    serializer horizons that advance as transports reserve flights —
    the single piece of shared state that makes devices contend.
    Everything else mirrors :class:`~repro.hw.network.NetworkLink`
    (nominal bandwidths, RTT, jitter, loss, radio power, degradation
    trace, static outages) plus the negotiation surface (``max_mtu``,
    ``codecs``) and an optional seeded ``faults`` plan.
    """

    name: str
    uplink_mbps: float
    downlink_mbps: float
    rtt_s: float
    jitter_s: float = 0.0
    loss_rate: float = 0.0
    tx_power_w: float = 0.0
    max_mtu_bytes: int = 1500
    codecs: tuple[str, ...] = ("float32", "float16", "uint8", "kmeans8")
    degradation: BandwidthTrace | None = None
    faults: LinkFaultPlan = field(default_factory=LinkFaultPlan)
    outages: tuple[tuple[float, float], ...] = ()
    up_free_s: float = field(default=0.0, init=False)
    down_free_s: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.uplink_mbps <= 0 or self.downlink_mbps <= 0:
            raise ValueError(
                f"{self.name}: bandwidth must be positive "
                f"(got up={self.uplink_mbps}, down={self.downlink_mbps} Mbps)"
            )
        if self.rtt_s < 0 or self.jitter_s < 0 or self.tx_power_w < 0:
            raise ValueError(f"{self.name}: rtt/jitter/tx_power must be non-negative")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(
                f"{self.name}: loss_rate must be in [0, 1), got {self.loss_rate}"
            )
        if self.max_mtu_bytes < 64:
            raise ValueError(
                f"{self.name}: max_mtu_bytes must be >= 64, got {self.max_mtu_bytes}"
            )
        if not self.codecs:
            raise ValueError(f"{self.name}: codecs must be non-empty")
        self.outages = validate_windows(self.outages, what="outage", owner=self.name)

    @classmethod
    def from_network_link(
        cls,
        link: NetworkLink,
        faults: LinkFaultPlan | None = None,
        max_mtu_bytes: int = 1500,
        codecs: tuple[str, ...] = ("float32", "float16", "uint8", "kmeans8"),
    ) -> "SharedLink":
        """Lift a single-radio preset (e.g. ``lte()``) into a shared tower."""
        return cls(
            name=link.name,
            uplink_mbps=link.uplink_mbps,
            downlink_mbps=link.downlink_mbps,
            rtt_s=link.rtt_s,
            jitter_s=link.jitter_s,
            loss_rate=link.loss_rate,
            tx_power_w=link.tx_power_w,
            max_mtu_bytes=max_mtu_bytes,
            codecs=codecs,
            degradation=link.degradation,
            faults=faults or LinkFaultPlan(),
            outages=link.outages,
        )

    # ------------------------------------------------------------------ #
    # link state over time
    # ------------------------------------------------------------------ #
    def available_at(self, time_s: float) -> float:
        """Earliest instant >= ``time_s`` outside every outage window.

        Static declared windows and fault-plan outages compose: the
        scan repeats until neither layer moves the instant, so nested
        or adjacent windows chain correctly.
        """
        while True:
            moved = time_s
            for start, end in self.outages:
                if moved < start:
                    break
                if moved < end:
                    moved = end
            moved = self.faults.available_at(moved)
            if moved == time_s:
                return time_s
            time_s = moved

    def scale_at(self, time_s: float) -> float:
        """Bandwidth multiplier at ``time_s`` (trace × fault-plan degrade)."""
        scale = 1.0 if self.degradation is None else self.degradation.scale_at(time_s)
        return scale * self.faults.bandwidth_scale_at(time_s)

    def loss_at(self, time_s: float) -> float:
        """Per-segment loss probability at ``time_s`` (base + degrade)."""
        return min(0.999, self.loss_rate + self.faults.loss_add_at(time_s))

    def carrier_drop_in(self, t0: float, t1: float) -> bool:
        """Whether sessions lose carrier anywhere in ``(t0, t1]``."""
        if self.faults.carrier_drop_in(t0, t1):
            return True
        return any(t0 < start <= t1 for start, _ in self.outages)

    def mtu_cap_at(self, time_s: float) -> int:
        """Largest MTU the tower conf-acks at ``time_s``.

        A heavily degraded link (scale below one half) advertises half
        the nominal MTU — smaller frames survive bad radio conditions
        better — which is what makes a mid-storm renegotiation visibly
        change a transfer's segmentation.
        """
        if self.scale_at(time_s) < 0.5:
            return max(64, self.max_mtu_bytes // 2)
        return self.max_mtu_bytes

    # ------------------------------------------------------------------ #
    # the contended serializer
    # ------------------------------------------------------------------ #
    def serialization_s(
        self, n_bytes: int, time_s: float = 0.0, direction: str = "up"
    ) -> float:
        """Seconds ``n_bytes`` occupies the serializer at ``time_s``."""
        if n_bytes < 0:
            raise ValueError(f"n_bytes must be >= 0, got {n_bytes}")
        if direction not in ("up", "down"):
            raise ValueError(f"direction must be 'up' or 'down', got {direction!r}")
        mbps = self.uplink_mbps if direction == "up" else self.downlink_mbps
        return 8.0 * n_bytes / (mbps * 1e6 * self.scale_at(time_s))

    def free_at(self, direction: str = "up") -> float:
        """When the serializer for ``direction`` next goes idle."""
        return self.up_free_s if direction == "up" else self.down_free_s

    def backlog_s(self, time_s: float, direction: str = "up") -> float:
        """How long a flight arriving at ``time_s`` waits for the serializer."""
        return max(0.0, self.free_at(direction) - time_s)

    def reserve(
        self, n_bytes: int, time_s: float, direction: str = "up"
    ) -> tuple[float, float]:
        """Claim the serializer for ``n_bytes``; return ``(start, end)``.

        The flight starts at the latest of the request time, the
        serializer's free horizon, and the end of any outage — then the
        horizon advances to its end.  This single scalar per direction
        is the whole contention model: whichever transport reserves
        first transmits first.
        """
        start = self.available_at(max(time_s, self.free_at(direction)))
        end = start + self.serialization_s(n_bytes, start, direction)
        if direction == "up":
            self.up_free_s = end
        else:
            self.down_free_s = end
        return start, end
