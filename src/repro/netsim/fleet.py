"""Fleet network simulator: many edge devices contending for one uplink.

:class:`~repro.offload.engine.EdgeTier` is one device against a private
link; this module is the *fleet* view the shared-link model exists for.
:func:`run_fleet_net` replays N devices' arrival processes through one
:class:`~repro.netsim.shared.SharedLink` on a single heap-driven
virtual clock: every device owns a
:class:`~repro.netsim.transport.SessionTransport` (session FSM + AIMD
window), offload decisions reuse the *real*
:class:`~repro.offload.policies.OffloadPolicy` objects through the same
:class:`~repro.offload.policies.OffloadContext` the edge tier builds,
and uplink flights interleave through the shared serializer — so
fair-share bandwidth division and graceful deadline degradation are
measured outcomes, not parameters.

Compute is abstracted to calibrated constants (gate, local trunk,
cloud service) because the object under test is the *network*: the
netchaos experiment and the chaos invariants compare policies on
deadline-SLO attainment while a seeded
:class:`~repro.netsim.faults.LinkFaultPlan` batters the link, and the
:class:`FleetNetReport` carries the per-request delivery ledger
(``delivered_count``) that proves no transfer was lost or
double-delivered across session churn.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

import numpy as np

from repro.netsim.congestion import AIMDConfig
from repro.netsim.shared import SharedLink
from repro.netsim.transport import SessionTransport
from repro.offload.policies import OffloadContext, OffloadPolicy
from repro.utils.rng import as_generator, derive_seed

__all__ = ["FleetDevice", "DeviceStats", "FleetNetReport", "run_fleet_net"]

# Per-request outcome codes (match repro.offload.engine's convention).
LOCAL_EASY, LOCAL_HARD, OFFLOADED = 0, 1, 2


@dataclass(frozen=True)
class FleetDevice:
    """One edge device's workload and calibrated compute constants.

    ``rate_hz`` drives a Poisson arrival process over ``n_requests``;
    ``p_hard`` is the fraction the branch gate flags hard (easy
    requests exit at the gate and never touch the link).  ``gate_s`` /
    ``local_s`` / ``cloud_s`` are the stem+branch pass, the extra local
    trunk, and the cloud service time — constants, because the fleet
    simulator studies the network, not the model.
    """

    rate_hz: float
    n_requests: int
    up_bytes: int
    down_bytes: int = 40
    gate_s: float = 2e-3
    local_s: float = 20e-3
    cloud_s: float = 2e-3
    p_hard: float = 0.6

    def __post_init__(self) -> None:
        if self.rate_hz <= 0:
            raise ValueError(f"rate_hz must be positive, got {self.rate_hz}")
        if self.n_requests <= 0:
            raise ValueError(f"n_requests must be positive, got {self.n_requests}")
        if self.up_bytes <= 0 or self.down_bytes <= 0:
            raise ValueError("payload sizes must be positive")
        if min(self.gate_s, self.local_s, self.cloud_s) < 0:
            raise ValueError("compute times must be non-negative")
        if not 0.0 <= self.p_hard <= 1.0:
            raise ValueError(f"p_hard must be in [0, 1], got {self.p_hard}")


@dataclass(frozen=True)
class DeviceStats:
    """One device's network ledger after a fleet run."""

    device_id: int
    n_requests: int
    n_offloaded: int
    delivered_bytes: int
    sent_bytes: int
    retx_bytes: int
    first_tx_s: float
    last_ack_s: float
    flights: int
    timeouts: int
    md_events: int
    sessions: int
    handshake_retx: int
    carrier_drops: int
    flap_resumes: int
    max_amplification: float

    @property
    def goodput_bps(self) -> float:
        """Delivered payload bits/s over the device's active uplink span."""
        span = self.last_ack_s - self.first_tx_s
        return 8.0 * self.delivered_bytes / span if span > 0 else 0.0


@dataclass(frozen=True)
class FleetNetReport:
    """Everything one fleet-network run produced.

    ``delivered_count[i]`` is how many times request ``i``'s response
    arrived back at its device — the chaos harness asserts it is
    exactly 1 for every offloaded request and 0 otherwise (no transfer
    lost, none double-delivered, across any amount of session churn).
    """

    policy: str
    link: str
    deadline_s: float
    arrival_s: np.ndarray = field(repr=False)
    completion_s: np.ndarray = field(repr=False)
    outcome: np.ndarray = field(repr=False)
    device_of: np.ndarray = field(repr=False)
    delivered_count: np.ndarray = field(repr=False)
    devices: tuple[DeviceStats, ...] = ()

    @property
    def n_requests(self) -> int:
        return int(self.arrival_s.size)

    @property
    def n_offloaded(self) -> int:
        return int((self.outcome == OFFLOADED).sum())

    @property
    def n_local(self) -> int:
        return self.n_requests - self.n_offloaded

    @property
    def sojourn_s(self) -> np.ndarray:
        """Per-request completion latency (arrival to answer)."""
        return self.completion_s - self.arrival_s

    @property
    def slo_attainment(self) -> float:
        """Fraction of requests answered within the deadline."""
        if not self.n_requests:
            return 1.0
        return float((self.sojourn_s <= self.deadline_s).mean())

    @property
    def n_lost(self) -> int:
        """Offloaded requests whose response never arrived (must be 0)."""
        offl = self.outcome == OFFLOADED
        return int((self.delivered_count[offl] == 0).sum())

    @property
    def n_double_delivered(self) -> int:
        """Responses delivered more than once (must be 0)."""
        return int((self.delivered_count > 1).sum())

    @property
    def retx_amplification(self) -> float:
        """Worst bytes-on-wire / payload ratio across every transfer."""
        return max((d.max_amplification for d in self.devices), default=1.0)

    @property
    def makespan_s(self) -> float:
        return float(self.completion_s.max() - self.arrival_s.min())

    def goodputs_bps(self) -> np.ndarray:
        """Per-device uplink goodput, in device order (offloaders only)."""
        return np.array(
            [d.goodput_bps for d in self.devices if d.n_offloaded], dtype=np.float64
        )


class _DeviceState:
    """Mutable per-device bookkeeping for the event loop (internal)."""

    def __init__(self, spec, transport, arrivals, hard, entropy, base):
        self.spec = spec
        self.transport = transport
        self.arrivals = arrivals
        self.hard = hard
        self.entropy = entropy
        self.base = base  # global request-id offset
        self.next_req = 0
        self.edge_free = 0.0
        self.inflight_req = -1
        self.delivered_bytes = 0
        self.sent_bytes = 0
        self.retx_bytes = 0
        self.flights = 0
        self.timeouts = 0
        self.first_tx_s = math.inf
        self.last_ack_s = 0.0
        self.max_amplification = 1.0
        self.n_offloaded = 0


def run_fleet_net(
    link: SharedLink,
    devices: tuple[FleetDevice, ...] | list[FleetDevice],
    policy_for,
    deadline_s: float,
    rng=None,
    aimd: AIMDConfig | None = None,
    max_attempts: int = 8,
    obs=None,
) -> FleetNetReport:
    """Replay a device fleet through one shared link; return the ledger.

    ``policy_for`` is either one :class:`OffloadPolicy` (shared by the
    fleet) or a callable ``device_id -> OffloadPolicy``.  Each device
    gets its own RNG stream (derived from ``rng``) and its own
    transport, so fleets replay identically regardless of interleaving;
    the link's :class:`~repro.netsim.faults.LinkFaultPlan` batters all
    of them at once.  Devices are strictly serial on the edge side (the
    next request gates after the previous one's local compute or uplink
    ack); cloud service and the downlink overlap.
    """
    devices = tuple(devices)
    if not devices:
        raise ValueError("run_fleet_net needs at least one device")
    if deadline_s <= 0:
        raise ValueError(f"deadline_s must be positive, got {deadline_s}")
    root = as_generator(rng)
    fleet_seed = int(root.integers(2**31 - 1))

    def policy_of(dev_id: int) -> OffloadPolicy:
        if isinstance(policy_for, OffloadPolicy):
            return policy_for
        return policy_for(dev_id)

    states: list[_DeviceState] = []
    total = 0
    for dev_id, spec in enumerate(devices):
        dev_rng = as_generator(derive_seed(fleet_seed, f"device-{dev_id}"))
        gaps = dev_rng.exponential(1.0 / spec.rate_hz, size=spec.n_requests)
        arrivals = np.cumsum(gaps)
        hard = dev_rng.random(spec.n_requests) < spec.p_hard
        entropy = np.where(hard, 1.0, 0.0)
        transport = SessionTransport(
            link,
            rng=as_generator(derive_seed(fleet_seed, f"transport-{dev_id}")),
            aimd=aimd,
            max_attempts=max_attempts,
            obs=obs,
            device_id=dev_id,
        )
        states.append(_DeviceState(spec, transport, arrivals, hard, entropy, total))
        total += spec.n_requests

    arrival_s = np.concatenate([s.arrivals for s in states])
    completion_s = np.full(total, np.nan)
    outcome = np.full(total, LOCAL_EASY, dtype=np.int64)
    device_of = np.concatenate(
        [np.full(s.spec.n_requests, i, dtype=np.int64) for i, s in enumerate(states)]
    )
    delivered_count = np.zeros(total, dtype=np.int64)

    # Event kinds: "req" = device considers its next request, "adv" =
    # drive the device's in-flight uplink transfer, "down" = a cloud
    # response reaches the downlink serializer.
    heap: list[tuple[float, int, str, int, int]] = []
    seq = 0

    def push(t: float, kind: str, dev: int, req: int = -1) -> None:
        nonlocal seq
        heapq.heappush(heap, (t, seq, kind, dev, req))
        seq += 1

    for dev_id, st in enumerate(states):
        push(float(st.arrivals[0]), "req", dev_id)

    def handle_req(st: _DeviceState, dev_id: int, now: float) -> None:
        i = st.next_req
        spec = st.spec
        arrival = float(st.arrivals[i])
        start = max(arrival, st.edge_free, now)
        gate_done = start + spec.gate_s
        st.edge_free = gate_done
        req = st.base + i
        easy = not bool(st.hard[i])
        est_local = (gate_done - arrival) + (0.0 if easy else spec.local_s)
        est_remote = (
            (gate_done - arrival)
            + st.transport.estimate_s(spec.up_bytes, gate_done)
            + spec.cloud_s
            + st.transport.estimate_down_s(spec.down_bytes, gate_done)
        )
        ctx = OffloadContext(
            entropy=float(st.entropy[i]),
            easy=easy,
            est_local_s=est_local,
            est_remote_s=est_remote,
        )
        st.next_req += 1
        if not policy_of(dev_id).offload(ctx):
            if easy:
                completion_s[req] = gate_done
            else:
                outcome[req] = LOCAL_HARD
                completion_s[req] = gate_done + spec.local_s
                st.edge_free = completion_s[req]
            schedule_next(st, dev_id)
            return
        outcome[req] = OFFLOADED
        st.n_offloaded += 1
        st.inflight_req = req
        st.transport.start(spec.up_bytes, gate_done)
        push(gate_done, "adv", dev_id)

    def schedule_next(st: _DeviceState, dev_id: int) -> None:
        if st.next_req < st.spec.n_requests:
            push(max(float(st.arrivals[st.next_req]), st.edge_free), "req", dev_id)

    def handle_adv(st: _DeviceState, dev_id: int, now: float) -> None:
        status, t_next = st.transport.advance(now)
        if status == "wait":
            push(t_next, "adv", dev_id)
            return
        result = st.transport.result
        req = st.inflight_req
        st.inflight_req = -1
        st.delivered_bytes += result.n_bytes
        st.sent_bytes += result.sent_bytes
        st.retx_bytes += result.retx_bytes
        st.flights += result.flights
        st.timeouts += result.timeouts
        st.first_tx_s = min(st.first_tx_s, result.start_s)
        st.last_ack_s = max(st.last_ack_s, result.ack_s)
        st.max_amplification = max(st.max_amplification, result.amplification)
        # The radio is held until the sender sees the final ack; then
        # the next request may gate.
        st.edge_free = max(st.edge_free, result.ack_s)
        push(t_next + st.spec.cloud_s, "down", dev_id, req)
        schedule_next(st, dev_id)

    def handle_down(st: _DeviceState, dev_id: int, req: int, now: float) -> None:
        arrival = st.transport.send_down(st.spec.down_bytes, now)
        completion_s[req] = arrival
        delivered_count[req] += 1

    while heap:
        t, _, kind, dev_id, req = heapq.heappop(heap)
        st = states[dev_id]
        if kind == "req":
            handle_req(st, dev_id, t)
        elif kind == "adv":
            handle_adv(st, dev_id, t)
        else:
            handle_down(st, dev_id, req, t)

    stats = tuple(
        DeviceStats(
            device_id=i,
            n_requests=st.spec.n_requests,
            n_offloaded=st.n_offloaded,
            delivered_bytes=st.delivered_bytes,
            sent_bytes=st.sent_bytes,
            retx_bytes=st.retx_bytes,
            first_tx_s=0.0 if math.isinf(st.first_tx_s) else st.first_tx_s,
            last_ack_s=st.last_ack_s,
            flights=st.flights,
            timeouts=st.timeouts,
            md_events=st.transport.aimd.n_md,
            sessions=st.transport.session.n_established,
            handshake_retx=st.transport.session.n_handshake_retx,
            carrier_drops=st.transport.session.n_carrier_drops,
            flap_resumes=st.transport.n_flap_resumes,
            max_amplification=st.max_amplification,
        )
        for i, st in enumerate(states)
    )
    policy_name = (
        policy_for.name if isinstance(policy_for, OffloadPolicy) else policy_of(0).name
    )
    return FleetNetReport(
        policy=policy_name,
        link=link.name,
        deadline_s=float(deadline_s),
        arrival_s=arrival_s,
        completion_s=completion_s,
        outcome=outcome,
        device_of=device_of,
        delivered_count=delivered_count,
        devices=stats,
    )
