"""Protocol-faithful network simulation for the offload path.

:mod:`repro.hw.network` models a link as an open-loop sampler —
bandwidth is a preset, loss triggers blind retransmits, links never
contend.  This package closes the loop, in four layers that compose
bottom-up:

* :mod:`repro.netsim.faults` — seeded, replayable link fault plans
  (outage / degrade / flap windows), validated by the same shared
  window validator the rest of :mod:`repro.faults` uses;
* :mod:`repro.netsim.session` — PPP/LCP-flavoured connection sessions:
  a CLOSED→NEGOTIATING→ESTABLISHED→CLOSING FSM with
  conf-req/conf-ack/conf-nak negotiation of MTU and codec, and carrier
  drops that force mid-flight renegotiation;
* :mod:`repro.netsim.congestion` — AIMD congestion control (slow
  start, additive increase, multiplicative decrease, RTO backoff) so
  uplink throughput *emerges* from loss;
* :mod:`repro.netsim.shared` + :mod:`repro.netsim.transport` — one
  contended :class:`SharedLink` serializer per direction that every
  device's :class:`SessionTransport` reserves self-clocked flights on,
  which is the whole fair-share contention model;
* :mod:`repro.netsim.fleet` — the heap-driven multi-device simulator
  that replays entire edge fleets (real
  :class:`~repro.offload.policies.OffloadPolicy` objects deciding per
  request) through one shared bottleneck under a fault plan.

Everything samples from caller-provided seeded streams, so network
storms replay identically in oracle and ``--live`` modes.
"""

from repro.netsim.congestion import AIMDConfig, AIMDController
from repro.netsim.faults import (
    DEGRADE,
    FLAP,
    OUTAGE,
    LinkFault,
    LinkFaultPlan,
    degradation_window,
    flap_at,
    link_storm,
    outage_window,
)
from repro.netsim.fleet import (
    DeviceStats,
    FleetDevice,
    FleetNetReport,
    run_fleet_net,
)
from repro.netsim.session import (
    CLOSED,
    CLOSING,
    ESTABLISHED,
    NEGOTIATING,
    LinkSession,
    SessionConfig,
)
from repro.netsim.shared import SharedLink
from repro.netsim.transport import SessionTransfer, SessionTransport

__all__ = [
    "OUTAGE",
    "DEGRADE",
    "FLAP",
    "LinkFault",
    "LinkFaultPlan",
    "outage_window",
    "degradation_window",
    "flap_at",
    "link_storm",
    "CLOSED",
    "NEGOTIATING",
    "ESTABLISHED",
    "CLOSING",
    "SessionConfig",
    "LinkSession",
    "AIMDConfig",
    "AIMDController",
    "SharedLink",
    "SessionTransfer",
    "SessionTransport",
    "FleetDevice",
    "DeviceStats",
    "FleetNetReport",
    "run_fleet_net",
]
