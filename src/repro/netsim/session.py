"""Connection sessions: PPP/LCP-flavoured handshake and teardown FSM.

Every offload transfer rides an explicit session.  A
:class:`LinkSession` walks the classic point-to-point state machine —

    CLOSED → NEGOTIATING → ESTABLISHED → CLOSING → CLOSED

with conf-req / conf-ack / conf-nak option negotiation, as in PPP's
LCP/IPCP: the edge sends a conf-req carrying its wanted options (MTU,
payload codec), and the peer either conf-acks them (one RTT) or
conf-naks with the values it *can* accept (the edge re-requests with
the nak'd values — one extra RTT).  Control packets ride the same lossy
link as data, so a lost conf-req pays a backed-off timeout and a
retransmission, bounded by ``max_config_attempts``; past the budget the
session assumes the link-layer delivered (mirroring the data path's
"transfers always deliver within budget" discipline).

A carrier drop — link flap or outage onset from the
:class:`~repro.netsim.faults.LinkFaultPlan` — throws an ESTABLISHED
session straight back to CLOSED (no CLOSING exchange: there is nobody
to talk to), clearing the negotiated options; the transport re-opens it
and the transfer resumes under whatever MTU the *new* negotiation
lands, which is how mid-flight renegotiation becomes visible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.rng import as_generator

__all__ = ["CLOSED", "NEGOTIATING", "ESTABLISHED", "CLOSING", "SessionConfig", "LinkSession"]

CLOSED = "closed"
NEGOTIATING = "negotiating"
ESTABLISHED = "established"
CLOSING = "closing"


@dataclass(frozen=True)
class SessionConfig:
    """Negotiable session options: wire MTU and payload codec."""

    mtu_bytes: int = 1500
    codec: str = "float32"

    def __post_init__(self) -> None:
        if self.mtu_bytes < 64:
            raise ValueError(f"mtu_bytes must be >= 64, got {self.mtu_bytes}")


class LinkSession:
    """One endpoint's connection FSM over a shared link.

    ``link`` must expose ``rtt_s``, ``loss_at(t)``, ``mtu_cap_at(t)``
    and ``codecs`` (the peer's acceptable set) —
    :class:`~repro.netsim.shared.SharedLink` does.  ``wanted`` is the
    conf-req the edge opens with; :attr:`config` holds what was actually
    conf-ack'd (``None`` unless ESTABLISHED).  All sampling draws from
    the caller-provided stream, so handshakes replay identically in
    oracle and ``--live`` modes.
    """

    def __init__(
        self,
        link,
        wanted: SessionConfig | None = None,
        rng=None,
        max_config_attempts: int = 5,
    ) -> None:
        if max_config_attempts < 1:
            raise ValueError(
                f"max_config_attempts must be >= 1, got {max_config_attempts}"
            )
        self.link = link
        self.wanted = wanted or SessionConfig()
        self.rng = as_generator(rng)
        self.max_config_attempts = max_config_attempts
        self.state = CLOSED
        self.config: SessionConfig | None = None
        self.n_established = 0
        self.n_naks = 0
        self.n_handshake_retx = 0
        self.n_carrier_drops = 0
        self.n_closed = 0

    def _exchange_s(self, time_s: float) -> float:
        """One request/reply control round, with lossy retransmits.

        Each attempt costs one RTT; a lost control packet (either
        direction) pays an additional backed-off timeout before the
        retransmit.  Returns the elapsed time for the round.
        """
        rtt = self.link.rtt_s
        elapsed = 0.0
        for attempt in range(self.max_config_attempts):
            p = self.link.loss_at(time_s + elapsed)
            # A round survives only if both control packets do.
            lost = self.rng.random() < 1.0 - (1.0 - p) ** 2
            if not lost or attempt == self.max_config_attempts - 1:
                elapsed += rtt
                return elapsed
            self.n_handshake_retx += 1
            elapsed += rtt * (2.0**attempt)  # backed-off control RTO
        return elapsed  # pragma: no cover — loop always returns

    def negotiate(self, time_s: float) -> SessionConfig:
        """What the peer would conf-ack at ``time_s`` (no time advances).

        MTU is nak'd down to the link's current cap — a degraded link
        advertises a smaller MTU, so a session renegotiated mid-storm
        genuinely changes segmentation — and an unsupported codec is
        nak'd to the peer's first supported one.
        """
        mtu = min(self.wanted.mtu_bytes, self.link.mtu_cap_at(time_s))
        codec = self.wanted.codec
        if codec not in self.link.codecs:
            codec = self.link.codecs[0]
        return SessionConfig(mtu_bytes=mtu, codec=codec)

    def open(self, time_s: float) -> float:
        """Run the handshake; return the instant the session ESTABLISHES.

        conf-req/conf-ack is one control round; if the peer must nak
        (MTU above its cap, codec unsupported) the corrected conf-req
        costs a second round.  Idempotent when already ESTABLISHED.
        """
        if self.state == ESTABLISHED:
            return time_s
        self.state = NEGOTIATING
        elapsed = self._exchange_s(time_s)
        granted = self.negotiate(time_s)
        if granted != self.wanted:
            self.n_naks += 1
            elapsed += self._exchange_s(time_s + elapsed)
            granted = self.negotiate(time_s + elapsed)
        self.config = granted
        self.state = ESTABLISHED
        self.n_established += 1
        return time_s + elapsed

    def close(self, time_s: float) -> float:
        """Orderly teardown (term-req/term-ack); return the CLOSED instant."""
        if self.state == CLOSED:
            return time_s
        self.state = CLOSING
        elapsed = self._exchange_s(time_s)
        self.state = CLOSED
        self.config = None
        self.n_closed += 1
        return time_s + elapsed

    def carrier_lost(self, time_s: float) -> None:
        """Hard drop: flap/outage killed the carrier, no teardown exchange."""
        if self.state != CLOSED:
            self.n_carrier_drops += 1
        self.state = CLOSED
        self.config = None
