"""AIMD congestion control: throughput that emerges from loss.

The old :class:`~repro.hw.network.NetworkLink` serializer treated
bandwidth as a preset — loss only multiplied the transfer time.  Real
uplinks self-clock: TCP probes for capacity with slow start, adds one
segment per RTT once past ``ssthresh`` (additive increase), halves its
window on loss (multiplicative decrease), and collapses to one segment
on a retransmission timeout.  :class:`AIMDController` is exactly that
state machine, deliberately minimal — no SACK, no fast recovery — so
the classic AIMD fixed point (per-flow goodput ≈ ``cwnd·mss/rtt``
converging to a fair share on a shared bottleneck) is legible in tests.

The controller is pure window arithmetic on the virtual clock; the
flight pacing, loss sampling, and RTO waits live in
:class:`~repro.netsim.transport.SessionTransport`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AIMDConfig", "AIMDController"]


@dataclass(frozen=True)
class AIMDConfig:
    """Window-dynamics knobs for :class:`AIMDController`.

    ``init_cwnd``/``init_ssthresh`` set the slow-start entry point;
    ``ai_segments`` is the additive-increase step per window's worth of
    acks; ``md_factor`` the multiplicative decrease on loss;
    ``rto_mult`` the exponential backoff base for consecutive timeouts.
    """

    init_cwnd: int = 1
    init_ssthresh: int = 32
    ai_segments: float = 1.0
    md_factor: float = 0.5
    min_cwnd: int = 1
    max_cwnd: int = 256
    rto_mult: float = 2.0

    def __post_init__(self) -> None:
        if self.init_cwnd < 1:
            raise ValueError(f"init_cwnd must be >= 1, got {self.init_cwnd}")
        if self.init_ssthresh < 1:
            raise ValueError(f"init_ssthresh must be >= 1, got {self.init_ssthresh}")
        if self.ai_segments <= 0:
            raise ValueError(f"ai_segments must be positive, got {self.ai_segments}")
        if not 0.0 < self.md_factor < 1.0:
            raise ValueError(f"md_factor must be in (0, 1), got {self.md_factor}")
        if self.min_cwnd < 1:
            raise ValueError(f"min_cwnd must be >= 1, got {self.min_cwnd}")
        if self.max_cwnd < self.min_cwnd:
            raise ValueError(
                f"max_cwnd ({self.max_cwnd}) must be >= min_cwnd ({self.min_cwnd})"
            )
        if self.rto_mult < 1.0:
            raise ValueError(f"rto_mult must be >= 1, got {self.rto_mult}")


class AIMDController:
    """TCP-flavoured congestion window: slow start, AI, MD, RTO backoff.

    ``cwnd`` is a float internally (additive increase accumulates
    fractional segments); :attr:`window` rounds down to the whole
    segments a flight may carry.  Counters (``n_md``, ``n_timeouts``,
    ``n_slow_starts``) feed the observability layer.
    """

    def __init__(self, config: AIMDConfig | None = None) -> None:
        self.config = config or AIMDConfig()
        self.cwnd = float(self.config.init_cwnd)
        self.ssthresh = float(self.config.init_ssthresh)
        self.consecutive_timeouts = 0
        self.n_md = 0
        self.n_timeouts = 0
        self.n_slow_starts = 1

    @property
    def window(self) -> int:
        """Whole segments the next flight may carry."""
        return max(self.config.min_cwnd, int(self.cwnd))

    @property
    def in_slow_start(self) -> bool:
        """Whether the window is still doubling per RTT."""
        return self.cwnd < self.ssthresh

    def on_ack(self, n_acked: int) -> None:
        """Grow the window for ``n_acked`` delivered segments.

        Slow start adds one segment per ack (window doubles per RTT);
        congestion avoidance adds ``ai_segments·n/cwnd`` (one step per
        window's worth of acks).  A clean flight also resets the RTO
        backoff.
        """
        if n_acked <= 0:
            return
        cfg = self.config
        if self.in_slow_start:
            self.cwnd = min(float(cfg.max_cwnd), self.cwnd + float(n_acked))
        else:
            self.cwnd = min(
                float(cfg.max_cwnd),
                self.cwnd + cfg.ai_segments * n_acked / max(self.cwnd, 1.0),
            )
        self.consecutive_timeouts = 0

    def on_loss(self) -> None:
        """Multiplicative decrease: some (not all) of a flight was lost."""
        cfg = self.config
        self.ssthresh = max(float(cfg.min_cwnd), self.cwnd * cfg.md_factor)
        self.cwnd = self.ssthresh
        self.n_md += 1
        self.consecutive_timeouts = 0

    def on_timeout(self) -> None:
        """Retransmission timeout: an entire flight vanished.

        The window collapses to ``min_cwnd`` and re-enters slow start;
        consecutive timeouts drive :meth:`rto_s` exponentially, the
        classic backoff that keeps a dead link from being hammered.
        """
        cfg = self.config
        self.ssthresh = max(float(cfg.min_cwnd), self.cwnd * cfg.md_factor)
        self.cwnd = float(cfg.min_cwnd)
        self.n_timeouts += 1
        self.n_slow_starts += 1
        self.consecutive_timeouts += 1

    def rto_s(self, base_rtt_s: float) -> float:
        """Current retransmission timeout, exponentially backed off."""
        return base_rtt_s * self.config.rto_mult ** (1 + self.consecutive_timeouts)
