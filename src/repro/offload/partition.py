"""Partition planner: where to cut a model between edge and cloud.

A *cut* splits a linear layer path into an edge prefix and a cloud
suffix; the activation tensor at the boundary ships over a
:class:`~repro.hw.network.NetworkLink`.  For every cut the planner
prices the four legs of a partitioned inference —

* edge compute: the prefix's per-layer latency on the edge
  :class:`~repro.hw.device.DeviceProfile`,
* uplink: the boundary tensor's wire bytes (optionally quantized, see
  :mod:`repro.offload.policies`) through the link's expected one-way
  delivery,
* cloud compute: the suffix's per-layer latency on the cloud profile,
* downlink: the result payload (logits) back to the edge,

— plus the edge-side energy (compute at the device's power draw, radio
at the link's transmit power).  :func:`plan_partitions` enumerates
every boundary, :func:`best_partition` picks the latency- or
energy-optimal one, and :func:`partition_table` renders the sweep the
offload experiment reports.

The two degenerate cuts are included on purpose: cut 0 ("all cloud")
ships the raw input and reproduces classic full offloading; the last
cut ("all edge") ships nothing and reproduces on-device inference —
so the sweep's optimum is read *against* both baselines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.tables import Table
from repro.hw.device import DeviceProfile
from repro.hw.energy import energy_joules
from repro.hw.flops import LayerCost, model_cost, stage_cost
from repro.hw.network import NetworkLink

__all__ = [
    "CutPoint",
    "SplitPlan",
    "linear_path",
    "enumerate_cuts",
    "plan_partitions",
    "best_partition",
    "partition_table",
]

_FLOAT32_BYTES = 4


def _numel(shape: tuple[int, ...]) -> int:
    n = 1
    for d in shape:
        n *= int(d)
    return n


def linear_path(
    model, in_shape: tuple[int, ...] | None = None
) -> tuple[list[LayerCost], tuple[int, ...]]:
    """The sequential layer-cost path a partition can cut, plus its input shape.

    * ``LeNet`` / anything whose stages chain head-to-tail: every stage's
      layers back to back.
    * ``BranchyLeNet``: the *full-exit* path (stem + trunk) — the path a
      cloud replica completes when the edge offloads a hard sample; the
      branch/gate stays on the edge by construction and is costed by the
      offload engine, not the planner.
    * ``CBNet``: AE encoder + decoder (flat images), then the truncated
      classifier stem + head (NCHW) — the decoder→stem seam is a free
      reshape, so the stages are chained explicitly here.
    """
    if hasattr(model, "autoencoder") and hasattr(model, "classifier"):  # CBNet
        ae, clf = model.autoencoder, model.classifier
        enc = stage_cost("encoder", ae.encoder, (ae.spec.input_dim,))
        dec = stage_cost("decoder", ae.decoder, enc.out_shape)
        stem = stage_cost("stem", clf.stem, clf.IN_SHAPE)
        head = stage_cost("head", clf.head, stem.out_shape)
        layers = [*enc.layers, *dec.layers, *stem.layers, *head.layers]
        return layers, (ae.spec.input_dim,)
    start = tuple(in_shape) if in_shape is not None else tuple(getattr(model, "IN_SHAPE", ()))
    if not start:
        raise ValueError("provide in_shape or define IN_SHAPE on the model")
    costs = model_cost(model, start)
    by_name = {c.name: c for c in costs}
    if "trunk" in by_name and "branch" in by_name:  # BranchyNet-shaped
        stages = [by_name["stem"], by_name["trunk"]]
    else:
        stages = costs
    return [layer for sc in stages for layer in sc.layers], start


@dataclass(frozen=True)
class CutPoint:
    """One candidate boundary: edge runs ``layers[:index]``, cloud the rest.

    ``boundary_shape`` is the activation shape shipped at the cut
    (the model input for ``index == 0``); ``boundary_elems`` its element
    count.  ``after`` names the last edge layer (``"input"`` at cut 0).
    """

    index: int
    after: str
    edge_layers: tuple[LayerCost, ...]
    cloud_layers: tuple[LayerCost, ...]
    boundary_shape: tuple[int, ...]

    @property
    def boundary_elems(self) -> int:
        return _numel(self.boundary_shape)

    @property
    def is_all_edge(self) -> bool:
        return not self.cloud_layers

    @property
    def is_all_cloud(self) -> bool:
        return not self.edge_layers


def enumerate_cuts(
    layers: list[LayerCost], in_shape: tuple[int, ...]
) -> list[CutPoint]:
    """Every cut boundary of a layer path, endpoints included.

    Boundaries after zero-cost reshape layers (``kind == "none"``) are
    skipped — flatten/reshape moves no data, so cutting before or after
    it is the same wire payload and the duplicate row only pads the
    sweep.
    """
    if not layers:
        raise ValueError("cannot partition an empty layer path")
    cuts: list[CutPoint] = []
    for index in range(len(layers) + 1):
        if index > 0 and layers[index - 1].kind == "none" and index < len(layers):
            continue
        boundary = in_shape if index == 0 else layers[index - 1].out_shape
        cuts.append(
            CutPoint(
                index=index,
                after="input" if index == 0 else layers[index - 1].name,
                edge_layers=tuple(layers[:index]),
                cloud_layers=tuple(layers[index:]),
                boundary_shape=tuple(boundary),
            )
        )
    return cuts


@dataclass(frozen=True)
class SplitPlan:
    """A fully-priced partition: one cut on one (edge, link, cloud) triple."""

    cut: CutPoint
    edge_s: float
    uplink_s: float
    cloud_s: float
    downlink_s: float
    uplink_bytes: int
    downlink_bytes: int
    edge_energy_j: float

    @property
    def total_s(self) -> float:
        """End-to-end latency of one partitioned inference."""
        return self.edge_s + self.uplink_s + self.cloud_s + self.downlink_s

    @property
    def network_s(self) -> float:
        return self.uplink_s + self.downlink_s

    def objective(self, name: str) -> float:
        """Scalar the planner minimizes: ``"latency"`` or ``"energy"``."""
        if name == "latency":
            return self.total_s
        if name == "energy":
            return self.edge_energy_j
        raise ValueError(f"unknown objective {name!r} (use 'latency' or 'energy')")


def _side_latency(layers: tuple[LayerCost, ...], device: DeviceProfile) -> float:
    """Latency of one side's layer run (overhead only when it runs anything)."""
    if not layers:
        return 0.0
    return device.inference_overhead_s + sum(device.layer_latency(c) for c in layers)


def plan_partitions(
    model,
    edge: DeviceProfile,
    cloud: DeviceProfile,
    link: NetworkLink,
    in_shape: tuple[int, ...] | None = None,
    wire_bytes_per_elem: float = _FLOAT32_BYTES,
    wire_overhead_bytes: int = 0,
) -> list[SplitPlan]:
    """Price every cut of ``model`` on an (edge, link, cloud) triple.

    ``wire_bytes_per_elem`` prices intermediate-tensor quantization
    (4 float32, 2 float16, 1 uint8); ``wire_overhead_bytes`` adds a
    fixed per-payload cost (headers, a quantization codebook).  Network
    legs use the link's *expected* delivery (mean retries and jitter) —
    the planner is a deterministic estimator; the engine samples.
    """
    layers, start_shape = linear_path(model, in_shape)
    plans: list[SplitPlan] = []
    out_elems = _numel(layers[-1].out_shape)
    for cut in enumerate_cuts(layers, start_shape):
        edge_s = _side_latency(cut.edge_layers, edge)
        cloud_s = _side_latency(cut.cloud_layers, cloud)
        if cut.is_all_edge:
            up_bytes = down_bytes = 0
            uplink_s = downlink_s = 0.0
        else:
            up_bytes = (
                int(round(cut.boundary_elems * wire_bytes_per_elem)) + wire_overhead_bytes
            )
            down_bytes = out_elems * _FLOAT32_BYTES
            uplink_s = link.expected_one_way_s(up_bytes, direction="up")
            downlink_s = link.expected_one_way_s(down_bytes, direction="down")
        # Radio energy prices expected serialization attempts (retries
        # retransmit; the timeout gaps between them are idle air).
        tx_s = (
            link.serialization_s(up_bytes, direction="up") / (1.0 - link.loss_rate)
            if up_bytes
            else 0.0
        )
        energy = energy_joules(edge, edge_s) + link.tx_power_w * tx_s
        plans.append(
            SplitPlan(
                cut=cut,
                edge_s=edge_s,
                uplink_s=uplink_s,
                cloud_s=cloud_s,
                downlink_s=downlink_s,
                uplink_bytes=up_bytes,
                downlink_bytes=down_bytes,
                edge_energy_j=energy,
            )
        )
    return plans


def best_partition(plans: list[SplitPlan], objective: str = "latency") -> SplitPlan:
    """The plan minimizing ``objective`` (ties break toward earlier cuts)."""
    if not plans:
        raise ValueError("no partition plans to choose from")
    return min(plans, key=lambda p: (p.objective(objective), p.cut.index))


def partition_table(
    plans_by_link: dict[str, list[SplitPlan]], title: str = ""
) -> Table:
    """Render a split sweep: one row per cut, one total column per link.

    The per-link optimum is starred, and the Table-II-style breakdown
    (edge / uplink / cloud / downlink) of each link's best plan follows
    in the experiment text around this table.
    """
    links = list(plans_by_link)
    if not links:
        raise ValueError("no links in the sweep")
    table = Table(
        headers=["cut after", "ship (B)", *[f"{name} (ms)" for name in links]],
        title=title,
    )
    bests = {name: best_partition(plans_by_link[name]) for name in links}
    n_cuts = len(plans_by_link[links[0]])
    for row in range(n_cuts):
        cells = []
        first = plans_by_link[links[0]][row]
        for name in links:
            plan = plans_by_link[name][row]
            star = "*" if plan.cut.index == bests[name].cut.index else " "
            cells.append(f"{plan.total_s * 1e3:8.3f}{star}")
        ship = "-" if first.cut.is_all_edge else str(first.uplink_bytes)
        table.add_row(f"{first.cut.index:2d} {first.cut.after}", ship, *cells)
    return table


# Re-exported for tests/examples that build toy paths by hand.
def path_of_sequential(name: str, stage, in_shape: tuple[int, ...]) -> list[LayerCost]:
    """Layer costs of one ``Sequential`` (a convenience over stage_cost)."""
    return list(stage_cost(name, stage, in_shape).layers)
