"""Runtime offload deciders and intermediate-tensor wire codecs.

A policy answers, per request, *"run the rest locally or ship it?"*
given an :class:`OffloadContext` — the branch-gate statistic plus the
engine's latency estimates for both continuations.  Four deciders cover
the canonical strategies:

* :class:`AlwaysLocal` — the on-device baseline (hard samples pay the
  trunk on the edge);
* :class:`AlwaysRemote` — classic full offloading: the raw input ships,
  the edge never computes;
* :class:`EntropyGated` — the BranchyNet gate as an *offload* gate:
  easy samples exit at the branch, hard samples ship the stem activation
  upstream.  An optional threshold override decouples the offload
  operating point from the model's accuracy-tuned exit threshold;
* :class:`DeadlineAware` — entropy-gated with a link-health check: hard
  samples ship while the remote path is estimated to meet the deadline,
  and fall back to local trunks when the link degrades past it —
  trading per-request latency for not queueing work on dead air.

A :class:`TensorCodec` shrinks the shipped activation: ``float16``
halves the payload by dtype cast; ``uint8`` rides the quantization
machinery in :mod:`repro.baselines.quantization` — the affine
scale/zero-point code (8-byte header) for a ~4x cut, with the
Deep-Compression k-means sharing available as ``kmeans8`` when a
256-entry codebook per payload is worth it (large tensors).  ``decode``
returns the float32 tensor the cloud replica actually sees, so any
accuracy delta from quantized transfer shows up in genuinely-served
predictions, not in a side formula.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.baselines.quantization import (
    affine_dequantize,
    affine_quantize,
    kmeans_quantize,
)

__all__ = [
    "OffloadContext",
    "OffloadPolicy",
    "AlwaysLocal",
    "AlwaysRemote",
    "EntropyGated",
    "DeadlineAware",
    "TensorCodec",
    "POLICY_NAMES",
]

POLICY_NAMES = ("always-local", "always-remote", "entropy-gated", "deadline-aware")


@dataclass(frozen=True)
class OffloadContext:
    """What the engine knows about one request at decision time.

    ``est_local_s`` / ``est_remote_s`` are completion estimates *from
    arrival* (queueing included), built from the device model and the
    link's expected delivery — the same deterministic quantities the
    partition planner prices, so the deadline policy and the planner
    agree about what "slower" means.
    """

    entropy: float
    easy: bool
    est_local_s: float
    est_remote_s: float


class OffloadPolicy:
    """Base decider: one boolean per request, plus what an offload ships.

    ``payload`` is ``"split"`` (the stem activation at the partition
    boundary) or ``"input"`` (the raw image — full offloading);
    ``runs_gate`` tells the engine whether the edge pays the
    stem+branch+gate cost before the decision.
    """

    name: str = "policy"
    payload: str = "split"
    runs_gate: bool = True

    def offload(self, ctx: OffloadContext) -> bool:
        """True to ship the request upstream, False to finish locally."""
        raise NotImplementedError


class AlwaysLocal(OffloadPolicy):
    """Never offload: the paper's on-device operating mode."""

    name = "always-local"

    def offload(self, ctx: OffloadContext) -> bool:
        return False


class AlwaysRemote(OffloadPolicy):
    """Offload everything: ship raw inputs, skip edge compute entirely."""

    name = "always-remote"
    payload = "input"
    runs_gate = False

    def offload(self, ctx: OffloadContext) -> bool:
        return True


class EntropyGated(OffloadPolicy):
    """Offload exactly the entropy-flagged hard samples.

    ``threshold`` overrides the model's exit threshold for the *offload*
    decision only (the engine still uses the model's own threshold for
    prediction correctness) — the lever that trades uplink traffic for
    edge trunk work without retraining.
    """

    name = "entropy-gated"

    def __init__(self, threshold: float | None = None) -> None:
        if threshold is not None and threshold < 0:
            raise ValueError(f"entropy threshold must be >= 0, got {threshold}")
        self.threshold = threshold

    def offload(self, ctx: OffloadContext) -> bool:
        if self.threshold is None:
            return not ctx.easy
        return ctx.entropy >= self.threshold


class DeadlineAware(OffloadPolicy):
    """Entropy-gated with a link-health deadline check.

    Easy samples always exit on-device.  A hard sample ships while the
    estimated remote completion meets ``deadline_s`` (offloading spends
    plentiful link capacity instead of scarce edge compute, even when
    the remote path is per-request slower); when the link degrades past
    the deadline the sample ships only if remote still beats local —
    i.e. the policy collapses to always-local on a dead link and to
    entropy-gated on a healthy one.
    """

    name = "deadline-aware"

    def __init__(self, deadline_s: float) -> None:
        if deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {deadline_s}")
        self.deadline_s = float(deadline_s)

    def offload(self, ctx: OffloadContext) -> bool:
        if ctx.easy:
            return False
        if ctx.est_remote_s <= self.deadline_s:
            return True
        return ctx.est_remote_s < ctx.est_local_s


@dataclass(frozen=True)
class TensorCodec:
    """Wire format for offloaded activation tensors.

    ``dtype`` ∈ {``"float32"``, ``"float16"``, ``"uint8"``,
    ``"kmeans8"``}.  ``uint8`` ships one affine code per element plus
    an 8-byte scale/zero header
    (:func:`repro.baselines.quantization.affine_quantize`); ``kmeans8``
    ships one code per element plus a 256-entry float32 codebook
    (:func:`repro.baselines.quantization.kmeans_quantize`) — only worth
    it for payloads well past 1 KB.  ``wire_bytes`` accounts both.
    """

    dtype: str = "float32"

    _BYTES_PER_ELEM = {"float32": 4.0, "float16": 2.0, "uint8": 1.0, "kmeans8": 1.0}
    _OVERHEAD_BYTES = {"float32": 0, "float16": 0, "uint8": 8, "kmeans8": 256 * 4}

    def __post_init__(self) -> None:
        if self.dtype not in self._BYTES_PER_ELEM:
            raise ValueError(
                f"unknown codec dtype {self.dtype!r}; "
                f"choose from {sorted(self._BYTES_PER_ELEM)}"
            )

    @property
    def bytes_per_elem(self) -> float:
        return self._BYTES_PER_ELEM[self.dtype]

    @property
    def overhead_bytes(self) -> int:
        """Fixed per-payload cost (affine header / k-means codebook)."""
        return self._OVERHEAD_BYTES[self.dtype]

    def wire_bytes(self, n_elems: int) -> int:
        """Total payload bytes for one ``n_elems`` tensor."""
        if n_elems < 0:
            raise ValueError(f"n_elems must be >= 0, got {n_elems}")
        return int(math.ceil(n_elems * self.bytes_per_elem)) + self.overhead_bytes

    def decode(self, tensor: np.ndarray) -> np.ndarray:
        """The float32 tensor the cloud sees after an encode/decode trip.

        float32 is the identity; float16 round-trips through the
        narrower dtype; uint8/kmeans8 return their quantized
        reconstructions.  The result is always a fresh contiguous
        float32 array.
        """
        tensor = np.asarray(tensor, dtype=np.float32)
        if self.dtype == "float32":
            return np.ascontiguousarray(tensor)
        if self.dtype == "float16":
            return np.ascontiguousarray(tensor.astype(np.float16).astype(np.float32))
        if self.dtype == "uint8":
            codes, scale, zero = affine_quantize(tensor, bits=8)
            return np.ascontiguousarray(affine_dequantize(codes, scale, zero))
        quantized, _ = kmeans_quantize(tensor, bits=8, rng=0, iterations=4)
        return np.ascontiguousarray(quantized)
