"""`repro.offload` — edge–cloud partitioned inference over a modeled network.

The paper runs every model wholly on one device; this subsystem splits
inference between a weak edge device and a cloud serving tier connected
by a :class:`~repro.hw.network.NetworkLink`:

* :mod:`repro.offload.partition` — the *planner*: enumerate every layer
  boundary of a LeNet / BranchyNet / CBNet stack, price edge compute,
  wire bytes, and cloud compute per cut, and pick the latency- or
  energy-optimal split per (edge device, link, cloud device) triple.
* :mod:`repro.offload.policies` — the *runtime deciders*
  (always-local, always-remote, entropy-gated, deadline-aware) plus
  float16/uint8 intermediate-tensor codecs for transfer.
* :mod:`repro.offload.engine` — the *edge tier*: gate on-device, queue
  offloads on the uplink, front a :class:`~repro.serving.engine.Server`
  or :class:`~repro.cluster.engine.Cluster` as the cloud side, and
  report the edge/network/cloud breakdown with energy accounting.

See ``docs/offload.md`` for the full story and
``python -m repro.experiments.cli offload`` for the study.
"""

from repro.hw.network import (
    BandwidthTrace,
    NetworkLink,
    ethernet,
    lte,
    network_links,
    wifi,
)
from repro.offload.engine import (
    EdgeTier,
    OffloadReport,
    RemoteTrunkBackend,
    cloud_server_for,
    offload_comparison_table,
)
from repro.offload.partition import (
    CutPoint,
    SplitPlan,
    best_partition,
    enumerate_cuts,
    linear_path,
    partition_table,
    plan_partitions,
)
from repro.offload.policies import (
    POLICY_NAMES,
    AlwaysLocal,
    AlwaysRemote,
    DeadlineAware,
    EntropyGated,
    OffloadContext,
    OffloadPolicy,
    TensorCodec,
)

__all__ = [
    "BandwidthTrace",
    "NetworkLink",
    "ethernet",
    "wifi",
    "lte",
    "network_links",
    "EdgeTier",
    "OffloadReport",
    "RemoteTrunkBackend",
    "cloud_server_for",
    "offload_comparison_table",
    "CutPoint",
    "SplitPlan",
    "linear_path",
    "enumerate_cuts",
    "plan_partitions",
    "best_partition",
    "partition_table",
    "POLICY_NAMES",
    "OffloadContext",
    "OffloadPolicy",
    "AlwaysLocal",
    "AlwaysRemote",
    "EntropyGated",
    "DeadlineAware",
    "TensorCodec",
]
