"""The edge tier: gate on-device, ship hard work upstream, account everything.

:class:`EdgeTier` fronts a cloud serving tier — a single
:class:`~repro.serving.engine.Server` or a whole
:class:`~repro.cluster.engine.Cluster` fleet (anything exposing
``serve_log``) — with one weak edge device behind a
:class:`~repro.hw.network.NetworkLink`.  It replays an arrival trace on
the shared virtual clock:

1. the edge runs the BranchyNet stem + branch gate (one FIFO compute
   queue, calibrated per-device latency), unless the policy is
   full-offload;
2. an :class:`~repro.offload.policies.OffloadPolicy` decides, per
   request, local completion vs upstream shipping;
3. local-easy requests answer at the branch exit; local-hard requests
   pay the trunk on the edge device;
4. offloaded requests encode their payload (raw input or stem
   activation, through the configured
   :class:`~repro.offload.policies.TensorCodec`), queue on the uplink
   (serialization occupies the radio; loss retries and jitter are
   sampled from a seeded generator), and arrive at the cloud tier,
   which batches and serves them with *real* model inference on the
   decoded tensors; responses ride the downlink back.

The :class:`OffloadReport` carries the per-request edge / network /
cloud latency breakdown, offload rate, uplink bytes, edge energy
(compute at the device's power model + radio at the link's transmit
power), and genuine end-to-end accuracy — quantized-transfer errors
show up here, not in a side formula.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.eval.metrics import latency_percentiles
from repro.eval.tables import Table
from repro.hw.device import DeviceProfile
from repro.hw.energy import energy_joules
from repro.hw.flops import stage_cost
from repro.hw.latency import branchynet_expected_latency
from repro.hw.network import NetworkLink
from repro.obs.prof import current_profiler
from repro.obs.spans import (
    SPAN_CLOUD,
    SPAN_DOWNLINK,
    SPAN_EDGE_GATE,
    SPAN_UPLINK,
)
from repro.offload.policies import OffloadContext, OffloadPolicy, TensorCodec
from repro.serving.backends import BatchTiming, InferenceBackend
from repro.serving.engine import Server
from repro.serving.router import RouteDecision
from repro.utils.logging import get_logger
from repro.utils.rng import as_generator

__all__ = [
    "EdgeTier",
    "OffloadReport",
    "RemoteTrunkBackend",
    "cloud_server_for",
    "offload_comparison_table",
]

_FLOAT32_BYTES = 4

logger = get_logger("offload.engine")


class RemoteTrunkBackend(InferenceBackend):
    """Cloud side of an entropy-gated split: trunk-only inference.

    Serves *stem activations* (not images): the edge already paid the
    stem + branch, so a cloud replica resumes from the partition
    boundary and runs only the trunk — the communication-aware division
    of labour the planner prices.  Static pipeline: no router, constant
    per-item time, which keeps the cloud tail flat.
    """

    name = "remote-trunk"

    def __init__(self, branchynet, device: DeviceProfile) -> None:
        stem = stage_cost("stem", branchynet.stem, branchynet.IN_SHAPE)
        trunk = stage_cost("trunk", branchynet.trunk, stem.out_shape)
        super().__init__(
            BatchTiming(
                overhead_s=device.inference_overhead_s,
                per_item_s=device.stage_latency(trunk),
            )
        )
        self.branchynet = branchynet
        self.in_shape = stem.out_shape

    def predict(
        self, features: np.ndarray, decision: RouteDecision | None = None
    ) -> np.ndarray:
        features = np.ascontiguousarray(features, dtype=np.float32)
        plan = self.branchynet.inference_plan(
            features.shape, self.branchynet.trunk, key="trunk"
        )
        return plan.run(features).argmax(axis=1)


def cloud_server_for(
    policy: OffloadPolicy,
    branchynet,
    cloud_device: DeviceProfile,
    oracle=None,
    codec: TensorCodec | None = None,
    **server_kwargs,
) -> Server:
    """A cloud :class:`Server` whose backend matches the policy's payload.

    ``"split"`` payloads get a :class:`RemoteTrunkBackend` (resume from
    the stem activation); ``"input"`` payloads get a full
    :class:`~repro.serving.backends.BranchyNetBackend` (classic full
    offloading of the raw image).  Passing the edge tier's
    :class:`~repro.sim.OffloadOracle` (plus the wire ``codec``) wraps
    the backend in a :class:`~repro.sim.OracleBackend` over the decoded
    payloads, so the cloud serves precomputed predictions on the same
    sample-id stream the oracle edge tier ships.
    """
    if policy.payload == "split":
        backend = RemoteTrunkBackend(branchynet, cloud_device)
    else:
        from repro.serving.backends import BranchyNetBackend

        backend = BranchyNetBackend(branchynet, cloud_device)
    if oracle is not None:
        from repro.sim.oracle import OracleBackend

        table = oracle.cloud_table(backend, policy.payload, codec or TensorCodec())
        backend = OracleBackend(backend, table)
    return Server(backend, **server_kwargs)


@dataclass(frozen=True)
class OffloadReport:
    """Everything one edge-tier run produced, ready for tables and asserts."""

    policy: str
    link: str
    codec: str
    scenario: str
    n_requests: int
    n_local_easy: int
    n_local_hard: int
    n_offloaded: int
    n_unserved: int  # offloaded but shed/stranded by the cloud tier
    uplink_bytes: int
    duration_s: float
    throughput_rps: float
    arrival_rate_hz: float
    mean_s: float
    p50_s: float
    p95_s: float
    p99_s: float
    max_s: float
    edge_mean_s: float  # queue + edge compute, averaged over all requests
    network_mean_s: float  # uplink + downlink, averaged over offloaded
    cloud_mean_s: float  # cloud sojourn, averaged over offloaded
    edge_utilization: float
    edge_energy_j: float
    radio_energy_j: float
    n_retransmits: int = 0  # lossy-link re-sends, uplink + downlink combined
    n_sessions: int = 0  # netsim transport: sessions established (0 = legacy link)
    n_renegotiations: int = 0  # netsim transport: conf-nak'd option rounds
    n_flap_drops: int = 0  # netsim transport: carrier drops forcing re-establishment
    accuracy: float = float("nan")
    cloud_report: object | None = field(default=None, repr=False)

    @property
    def offload_rate(self) -> float:
        return self.n_offloaded / self.n_requests if self.n_requests else 0.0

    @property
    def retry_amplification(self) -> float:
        """Link sends per offloaded request beyond the lossless baseline.

        1.0 means every payload delivered first try; 1.25 means a quarter
        of the offloads paid one extra (bounded, backed-off) transmission
        somewhere on their round trip.
        """
        if not self.n_offloaded:
            return 1.0
        return 1.0 + self.n_retransmits / self.n_offloaded

    @property
    def uplink_mb(self) -> float:
        return self.uplink_bytes / 1e6

    @property
    def total_energy_j(self) -> float:
        """Edge-side energy: device compute plus radio transmissions."""
        return self.edge_energy_j + self.radio_energy_j

    @property
    def energy_mj_per_request(self) -> float:
        return 1e3 * self.total_energy_j / self.n_requests if self.n_requests else 0.0

    def summary(self) -> str:
        return (
            f"[{self.policy}/{self.link}/{self.scenario}] "
            f"p95 {self.p95_s * 1e3:.1f} ms | offload {self.offload_rate:.1%} | "
            f"uplink {self.uplink_mb:.2f} MB | "
            f"edge {self.edge_mean_s * 1e3:.2f} ms | "
            f"energy {self.energy_mj_per_request:.2f} mJ/req"
        )


def offload_comparison_table(reports: list[OffloadReport], title: str = "") -> Table:
    """Render several edge-tier runs side by side (one row per policy)."""
    table = Table(
        headers=[
            "policy",
            "link",
            "codec",
            "p50 (ms)",
            "p95 (ms)",
            "p99 (ms)",
            "offload",
            "uplink (MB)",
            "edge (ms)",
            "net (ms)",
            "cloud (ms)",
            "retx",
            "mJ/req",
            "acc",
        ],
        title=title,
    )
    for r in reports:
        table.add_row(
            r.policy,
            r.link,
            r.codec,
            f"{r.p50_s * 1e3:.2f}",
            f"{r.p95_s * 1e3:.2f}",
            f"{r.p99_s * 1e3:.2f}",
            f"{r.offload_rate:.1%}",
            f"{r.uplink_mb:.2f}",
            f"{r.edge_mean_s * 1e3:.2f}",
            "-" if np.isnan(r.network_mean_s) else f"{r.network_mean_s * 1e3:.2f}",
            "-" if np.isnan(r.cloud_mean_s) else f"{r.cloud_mean_s * 1e3:.2f}",
            f"{r.retry_amplification:.2f}x",
            f"{r.energy_mj_per_request:.2f}",
            "-" if np.isnan(r.accuracy) else f"{r.accuracy:.1%}",
        )
    return table


# Per-request outcome codes.
_LOCAL_EASY, _LOCAL_HARD, _OFFLOADED = 0, 1, 2


def _cloud_is_oracle(cloud) -> bool:
    """Whether a cloud tier (Server or Cluster) answers from oracle tables."""
    backend = getattr(cloud, "backend", None)  # serving.Server
    if backend is not None:
        return bool(backend.oracle)
    replicas = getattr(cloud, "replicas", ())  # cluster.Cluster
    return bool(replicas) and all(r.backend.oracle for r in replicas)


class EdgeTier:
    """Split inference between one edge device and a cloud serving tier.

    Parameters
    ----------
    branchynet:
        Trained :class:`~repro.models.branchynet.BranchyLeNet`; its stem
        + branch is the on-device gate, its trunk the offloadable
        suffix.
    edge_device:
        Calibrated edge :class:`~repro.hw.device.DeviceProfile` (one
        FIFO compute queue).
    link:
        The :class:`~repro.hw.network.NetworkLink` between tiers; uplink
        serialization occupies the radio, so offloads queue on it.
    cloud:
        The cloud tier: a :class:`~repro.serving.engine.Server` or
        :class:`~repro.cluster.engine.Cluster` (anything with
        ``serve_log``).  Its backend must match the policy's
        payload — see :func:`cloud_server_for`.
    policy:
        An :class:`~repro.offload.policies.OffloadPolicy`.
    codec:
        Wire format for offloaded tensors
        (:class:`~repro.offload.policies.TensorCodec`); the cloud serves
        the *decoded* tensors, so codec error reaches the accuracy
        column.
    obs:
        Optional :class:`~repro.obs.observer.Observer`.  When set, each
        request's offload legs (edge gate, uplink, cloud service,
        downlink) are recorded as parent-linked spans and the finished
        run is finalized into spans and metrics.  Single-use — one per
        ``serve`` call.
    prof:
        Optional :class:`~repro.obs.prof.PhaseProfiler` attributing
        **wall-clock** time to edge phases (warmup, event_loop, network,
        inference, cloud, report).  ``None`` falls back to the
        process-global profiler (``REPRO_PROF=1``), else off.
    rng:
        Seed/generator for link loss and jitter sampling (deterministic
        replays).
    cloud_est_s:
        Expected cloud service time for the deadline policy's remote
        estimate; inferred from the cloud tier's backend when omitted.
    oracle:
        Optional :class:`~repro.sim.OffloadOracle`.  When given, the
        request stream carries sample ids into the oracle's image pool:
        the edge gate, local trunk, and payload sizing answer from the
        precomputed tables, and the cloud tier (whose backend must be
        oracle-wrapped — see :func:`cloud_server_for`) serves the same
        ids.  All virtual-clock quantities stay identical to the live
        path.
    transport:
        Optional :class:`~repro.netsim.transport.SessionTransport`.
        When given, every offload rides its connection session over the
        transport's :class:`~repro.netsim.shared.SharedLink`: uplinks
        become AIMD-paced flights (throughput emerges from loss),
        deadline estimates come from the transport's live congestion
        state, downlinks reserve the shared serializer, and the report
        gains session counters.  ``link`` may then be ``None`` (the
        transport's shared link provides name/RTT/radio power); other
        edge tiers handed the *same* transport's link contend for it.
    """

    def __init__(
        self,
        branchynet,
        edge_device: DeviceProfile,
        link: NetworkLink | None,
        cloud,
        policy: OffloadPolicy,
        codec: TensorCodec | None = None,
        rng: np.random.Generator | int | None = 0,
        cloud_est_s: float | None = None,
        oracle=None,
        obs=None,
        prof=None,
        transport=None,
    ) -> None:
        if not hasattr(cloud, "serve_log"):
            raise TypeError(
                f"cloud tier {type(cloud).__name__} lacks serve_log()/"
                "serve_detailed(); pass a repro.serving.Server or "
                "repro.cluster.Cluster"
            )
        if oracle is not None and not _cloud_is_oracle(cloud):
            raise TypeError(
                "an oracle EdgeTier ships sample ids, so the cloud tier's "
                "backend must be oracle-wrapped too — build it via "
                "cloud_server_for(..., oracle=...)"
            )
        if link is None and transport is None:
            raise TypeError("EdgeTier needs a NetworkLink or a SessionTransport")
        self.branchynet = branchynet
        self.edge_device = edge_device
        self.transport = transport
        # In transport mode the shared link provides the name / RTT /
        # radio-power surface the reporting path reads.
        self.link = link if link is not None else transport.link
        self.cloud = cloud
        self.policy = policy
        self.codec = codec or TensorCodec()
        self.oracle = oracle
        self.obs = obs
        # Wall-clock phase attribution: an explicit profiler wins, else
        # the process-global one (REPRO_PROF=1), else disabled.
        self.prof = prof if prof is not None else current_profiler()
        self.rng = as_generator(rng)
        lat = branchynet_expected_latency(branchynet, edge_device, exit_rate=1.0)
        #: Edge cost of one gate pass (stem + branch + gate decision).
        self.gate_s = lat.early_path
        #: Extra edge cost when a hard sample runs the trunk locally.
        self.trunk_extra_s = lat.full_path - lat.early_path
        self.cloud_est_s = (
            self._infer_cloud_est(cloud) if cloud_est_s is None else float(cloud_est_s)
        )

    @staticmethod
    def _infer_cloud_est(cloud) -> float:
        backend = getattr(cloud, "backend", None)  # serving.Server
        if backend is not None:
            return backend.mean_service_s()
        replicas = getattr(cloud, "replicas", None)  # cluster.Cluster
        if replicas:
            return min(r.backend.mean_service_s() for r in replicas)
        return 0.0

    # ------------------------------------------------------------------ #
    # serving loop
    # ------------------------------------------------------------------ #
    def serve(
        self,
        images: np.ndarray,
        arrival_s: np.ndarray,
        labels: np.ndarray | None = None,
        scenario: str = "trace",
    ) -> OffloadReport:
        """Replay one arrival trace through the edge tier and report.

        Same contract as :meth:`repro.serving.Server.serve`: ``images[i]``
        arrives at ``arrival_s[i]`` (non-decreasing); ``labels`` adds
        genuine end-to-end accuracy (branch exits, local trunks, and
        cloud completions alike).
        """
        from repro.sim.core import validate_trace

        images, arrival_s = validate_trace(images, arrival_s)
        n = images.shape[0]

        prof = self.prof
        if prof is not None:
            prof.start("serve")
            prof.start("warmup")
        threshold = float(self.branchynet.entropy_threshold)
        if not self.policy.runs_gate:
            entropies = np.full(n, np.nan, dtype=np.float64)
            branch_preds = np.full(n, -1, dtype=np.int64)
        elif self.oracle is not None:
            # One precomputed stem+branch pass over the unique pool
            # replaces gating the (much longer, repeat-heavy) stream.
            entropies = self.oracle.entropy[images]
            branch_preds = self.oracle.branch_preds[images]
        else:
            entropies, branch_preds = self.branchynet.branch_gate(images)

        if self.oracle is not None:
            boundary_elems = self.oracle.boundary_elems(self.policy.payload)
        elif self.policy.payload == "split":
            boundary_elems = int(
                np.prod(stage_cost("stem", self.branchynet.stem, images.shape[1:]).out_shape)
            )
        else:
            boundary_elems = int(np.prod(images.shape[1:]))
        up_bytes = self.codec.wire_bytes(boundary_elems)
        down_bytes = int(self.branchynet.num_classes) * _FLOAT32_BYTES
        if prof is not None:
            prof.stop()  # warmup

        completion = np.full(n, np.nan)
        outcome = np.full(n, _LOCAL_EASY, dtype=np.int64)
        predictions = np.full(n, -1, dtype=np.int64)
        edge_part = np.zeros(n)  # queue + edge compute, per request
        net_part = np.full(n, np.nan)  # uplink + downlink, offloaded only
        cloud_part = np.full(n, np.nan)  # cloud sojourn, offloaded only

        edge_free = 0.0
        uplink_free = 0.0
        edge_busy = 0.0
        radio_busy = 0.0
        uplink_bytes_total = 0
        n_retransmits = 0
        ship: list[tuple[int, float, float]] = []  # (req, ship_ready_s, cloud_arrival_s)

        obs = self.obs
        debug = logger.isEnabledFor(10)  # logging.DEBUG
        if prof is not None:
            prof.start("event_loop")
        for i in range(n):
            arrival = float(arrival_s[i])
            if self.policy.runs_gate:
                start = max(arrival, edge_free)
                gate_done = start + self.gate_s
                edge_free = gate_done
                edge_busy += self.gate_s
                ready = gate_done
                if obs is not None:
                    obs.on_leg(SPAN_EDGE_GATE, i, start, gate_done)
            else:
                ready = arrival
            easy = bool(entropies[i] < threshold) if self.policy.runs_gate else False
            est_local = (ready - arrival) + (0.0 if easy else self.trunk_extra_s)
            # Link legs are estimated at decision time, so trace-driven
            # bandwidth degradation reaches the deadline policy directly
            # instead of only via an already-built uplink backlog.  In
            # transport mode the estimate reads *live* congestion state
            # (AIMD window, session FSM, shared-serializer backlog), so
            # it collapses exactly when the link does.
            if self.transport is not None:
                est_remote = (
                    (ready - arrival)
                    + self.transport.estimate_s(up_bytes, ready)
                    + self.cloud_est_s
                    + self.transport.estimate_down_s(down_bytes, ready)
                )
            else:
                est_remote = (
                    (ready - arrival)
                    + max(0.0, uplink_free - ready)
                    + self.link.expected_one_way_s(up_bytes, time_s=ready)
                    + self.cloud_est_s
                    + self.link.expected_one_way_s(down_bytes, time_s=ready, direction="down")
                )
            ctx = OffloadContext(
                entropy=float(entropies[i]),
                easy=easy,
                est_local_s=est_local,
                est_remote_s=est_remote,
            )
            if not self.policy.offload(ctx):
                edge_part[i] = ready - arrival
                if easy:
                    completion[i] = ready
                    predictions[i] = branch_preds[i]
                else:
                    # Hard sample kept local: the trunk runs on the edge.
                    outcome[i] = _LOCAL_HARD
                    completion[i] = ready + self.trunk_extra_s
                    edge_free = completion[i]
                    edge_busy += self.trunk_extra_s
                    edge_part[i] += self.trunk_extra_s
                continue
            # Offload: serialization occupies the radio; retries and
            # jitter are sampled (seed-deterministic).
            outcome[i] = _OFFLOADED
            edge_part[i] = ready - arrival
            # A declared link outage defers the start (the radio waits it
            # out); retransmits within a transfer are bounded by the
            # link's max_attempts budget and surfaced in the report.
            if prof is not None:
                prof.start("network")
            if self.transport is not None:
                # Session-riding uplink: the payload travels as AIMD
                # flights over the shared serializer; handshakes, flaps,
                # and outages are the transport's problem.
                result = self.transport.send(up_bytes, ready)
                if debug and (result.retx_segments or result.handshakes > 1):
                    logger.debug(
                        "uplink session: request %d delivered after %d flights "
                        "(%d retx segments, %d handshakes)",
                        i, result.flights, result.retx_segments, result.handshakes,
                    )
                # The radio is held until the final ack returns.
                uplink_free = result.ack_s
                radio_busy += result.tx_s
                uplink_bytes_total += up_bytes
                n_retransmits += result.retx_segments
                cloud_arrival = result.delivered_s
                if obs is not None:
                    obs.on_leg(SPAN_UPLINK, i, result.start_s, cloud_arrival)
                if prof is not None:
                    prof.stop()  # network
                ship.append((i, ready, cloud_arrival))
                continue
            wanted = max(ready, uplink_free)
            tx_start = self.link.next_available(wanted)
            if debug and tx_start > wanted:
                logger.debug(
                    "uplink outage: request %d deferred %.6fs -> %.6fs",
                    i, wanted, tx_start,
                )
            transfer = self.link.transfer(up_bytes, time_s=tx_start, rng=self.rng)
            if debug and transfer.attempts > 1:
                logger.debug(
                    "uplink fallback: request %d delivered after %d attempts",
                    i, transfer.attempts,
                )
            uplink_free = tx_start + transfer.occupancy_s
            # Radio energy covers serialization attempts only — the
            # retransmit-timeout gaps inside occupancy_s are idle air.
            radio_busy += transfer.tx_s
            uplink_bytes_total += up_bytes
            n_retransmits += transfer.attempts - 1
            cloud_arrival = uplink_free + transfer.propagation_s
            if obs is not None:
                obs.on_leg(SPAN_UPLINK, i, tx_start, cloud_arrival)
            if prof is not None:
                prof.stop()  # network
            ship.append((i, ready, cloud_arrival))
        if prof is not None:
            prof.stop()  # event_loop
            prof.start("inference")

        self._run_local_hard(images, outcome, predictions)
        if prof is not None:
            prof.stop()  # inference
            prof.start("cloud")
        cloud_report, down_retransmits = self._run_cloud(
            images, ship, down_bytes, completion, predictions, net_part, cloud_part, scenario
        )
        n_retransmits += down_retransmits
        if prof is not None:
            prof.stop()  # cloud
            prof.start("report")

        accuracy = float("nan")
        if labels is not None:
            accuracy = float((predictions == np.asarray(labels)).mean())
        if obs is not None:
            obs.finalize_arrays(arrival_s, completion)
        report = self._report(
            arrival_s,
            completion,
            outcome,
            edge_part,
            net_part,
            cloud_part,
            uplink_bytes_total,
            n_retransmits,
            edge_busy,
            radio_busy,
            accuracy,
            cloud_report,
            scenario,
        )
        if prof is not None:
            prof.stop()  # report
            prof.stop()  # serve
        return report

    # ------------------------------------------------------------------ #
    # local hard path + cloud tier
    # ------------------------------------------------------------------ #
    def _run_local_hard(self, images, outcome, predictions) -> None:
        """Trunk predictions for hard samples kept on the edge."""
        hard_idx = np.flatnonzero(outcome == _LOCAL_HARD)
        if not hard_idx.size:
            return
        if self.oracle is not None:
            predictions[hard_idx] = self.oracle.trunk_preds[images[hard_idx]]
            return
        result = self.branchynet.infer(images[hard_idx], threshold=-1.0)
        predictions[hard_idx] = result.predictions

    def _run_cloud(
        self, images, ship, down_bytes, completion, predictions, net_part, cloud_part, scenario
    ):
        """Ship payloads, serve them upstream, ride the downlink back."""
        if not ship:
            return None, 0
        order = sorted(range(len(ship)), key=lambda k: ship[k][2])
        req_ids = [ship[k][0] for k in order]
        ready_s = np.array([ship[k][1] for k in order])
        cloud_arrival = np.array([ship[k][2] for k in order])

        if self.oracle is not None:
            # Sample ids travel as-is; the (already decoded) payloads
            # live in the cloud backend's precomputed table.
            payloads = images[req_ids]
        elif self.policy.payload == "split":
            raw = self.branchynet.stem_features(images[req_ids])
            payloads = self._decode(raw)
        else:
            raw = np.ascontiguousarray(images[req_ids], dtype=np.float32)
            payloads = self._decode(raw)

        report, cloud_log = self.cloud.serve_log(
            payloads, cloud_arrival, scenario=f"{scenario}-offload"
        )
        # Responses ride the downlink in cloud-*completion* order (a
        # cluster's replicas may finish out of arrival order); requests a
        # shedding cloud tier never served end the trace unserved instead
        # of poisoning the downlink queue with NaN.
        cloud_done_s = cloud_log.completion_s
        finished = [
            (cloud_done_s[pos], pos, req_id)
            for pos, req_id in enumerate(req_ids)
            if np.isfinite(cloud_done_s[pos])
        ]
        finished.sort()
        downlink_free = 0.0
        n_retransmits = 0
        obs = self.obs
        debug = logger.isEnabledFor(10)  # logging.DEBUG
        for cloud_done, pos, req_id in finished:
            if self.transport is not None:
                # Responses reserve the shared downlink serializer.
                tx_start = max(cloud_done, self.transport.link.free_at("down"))
                done = self.transport.send_down(down_bytes, cloud_done)
                downlink_free = self.transport.link.free_at("down")
                completion[req_id] = done
                predictions[req_id] = cloud_log.prediction[pos]
                cloud_part[req_id] = cloud_done - cloud_arrival[pos]
                net_part[req_id] = (cloud_arrival[pos] - ready_s[pos]) + (done - cloud_done)
                if obs is not None:
                    obs.on_leg(SPAN_CLOUD, req_id, float(cloud_arrival[pos]), float(cloud_done))
                    obs.on_leg(SPAN_DOWNLINK, req_id, tx_start, done)
                continue
            wanted = max(cloud_done, downlink_free)
            tx_start = self.link.next_available(wanted)
            if debug and tx_start > wanted:
                logger.debug(
                    "downlink outage: request %d deferred %.6fs -> %.6fs",
                    req_id, wanted, tx_start,
                )
            transfer = self.link.transfer(
                down_bytes, time_s=tx_start, rng=self.rng, direction="down"
            )
            if debug and transfer.attempts > 1:
                logger.debug(
                    "downlink fallback: request %d delivered after %d attempts",
                    req_id, transfer.attempts,
                )
            downlink_free = tx_start + transfer.occupancy_s
            n_retransmits += transfer.attempts - 1
            done = downlink_free + transfer.propagation_s
            completion[req_id] = done
            predictions[req_id] = cloud_log.prediction[pos]
            cloud_part[req_id] = cloud_done - cloud_arrival[pos]
            net_part[req_id] = (cloud_arrival[pos] - ready_s[pos]) + (done - cloud_done)
            if obs is not None:
                obs.on_leg(SPAN_CLOUD, req_id, float(cloud_arrival[pos]), float(cloud_done))
                obs.on_leg(SPAN_DOWNLINK, req_id, tx_start, done)
        return report, n_retransmits

    def _decode(self, raw: np.ndarray) -> np.ndarray:
        """Wire round-trip of one payload batch.

        Each request ships (and dequantizes) its own tensor, exactly as
        the wire-byte accounting assumes; the dtype codecs decode a
        whole batch losslessly, so only the per-payload quantizers
        (whose scale/codebook is per tensor) pay a loop.
        """
        if self.codec.dtype in ("float32", "float16"):
            return self.codec.decode(raw)
        return np.stack([self.codec.decode(t) for t in raw])

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def _report(
        self,
        arrival_s,
        completion,
        outcome,
        edge_part,
        net_part,
        cloud_part,
        uplink_bytes_total,
        n_retransmits,
        edge_busy,
        radio_busy,
        accuracy,
        cloud_report,
        scenario,
    ) -> OffloadReport:
        sojourn = completion - arrival_s
        # A shedding/failing cloud tier leaves offloaded requests
        # unserved (NaN completion); latency statistics cover the served
        # requests, with the unserved count reported alongside.
        served = sojourn[np.isfinite(sojourn)]
        n_unserved = int(len(sojourn) - len(served))
        if served.size:
            p50, p95, p99 = latency_percentiles(served)
            mean_s, max_s = float(served.mean()), float(served.max())
            makespan = float(np.nanmax(completion) - arrival_s[0])
        else:
            p50 = p95 = p99 = mean_s = max_s = float("nan")
            makespan = float(arrival_s[-1] - arrival_s[0])
        span = float(arrival_s[-1] - arrival_s[0])
        n = len(arrival_s)
        offloaded = outcome == _OFFLOADED
        n_sessions = n_renegotiations = n_flap_drops = 0
        if self.transport is not None:
            sess = self.transport.session
            n_sessions = sess.n_established
            n_renegotiations = sess.n_naks
            n_flap_drops = sess.n_carrier_drops
        return OffloadReport(
            policy=self.policy.name,
            link=self.link.name,
            codec=self.codec.dtype,
            scenario=scenario,
            n_requests=n,
            n_local_easy=int((outcome == _LOCAL_EASY).sum()),
            n_local_hard=int((outcome == _LOCAL_HARD).sum()),
            n_offloaded=int(offloaded.sum()),
            n_unserved=n_unserved,
            uplink_bytes=int(uplink_bytes_total),
            duration_s=makespan,
            throughput_rps=len(served) / makespan if makespan > 0 else float("inf"),
            arrival_rate_hz=(n - 1) / span if span > 0 else float("inf"),
            mean_s=mean_s,
            p50_s=p50,
            p95_s=p95,
            p99_s=p99,
            max_s=max_s,
            edge_mean_s=float(edge_part.mean()),
            # nanmean: shed offloads carry NaN parts but must not erase
            # the breakdown of the (typically many) served ones.
            network_mean_s=(
                float(np.nanmean(net_part[offloaded]))
                if np.isfinite(net_part[offloaded]).any()
                else float("nan")
            ),
            cloud_mean_s=(
                float(np.nanmean(cloud_part[offloaded]))
                if np.isfinite(cloud_part[offloaded]).any()
                else float("nan")
            ),
            edge_utilization=edge_busy / makespan if makespan > 0 else 0.0,
            edge_energy_j=energy_joules(self.edge_device, edge_busy),
            radio_energy_j=self.link.tx_power_w * radio_busy,
            n_retransmits=int(n_retransmits),
            n_sessions=n_sessions,
            n_renegotiations=n_renegotiations,
            n_flap_drops=n_flap_drops,
            accuracy=accuracy,
            cloud_report=cloud_report,
        )
