#!/usr/bin/env python
"""Offload demo: split BranchyNet between a Pi 4 and a GCI cloud server.

Builds (or loads from cache) a small CBNet pipeline, then serves one
request stream three ways on an LTE uplink — everything on the Pi,
everything shipped to the cloud, and the entropy-gated split where easy
samples exit at the on-device branch while hard samples ship their stem
activation upstream.  The load is sized so both degenerate strategies
saturate (the Pi on compute, the LTE uplink on raw images) and only the
split survives.  A second pass walks the link through a trace-driven
bandwidth collapse to show the deadline-aware policy falling back to
local trunks.

Run:  python examples/offload_demo.py
"""

from dataclasses import replace

from repro import PipelineConfig, TrainConfig, build_cbnet_pipeline
from repro.hw import BandwidthTrace, gci_cpu, lte, raspberry_pi4
from repro.hw.latency import branchynet_expected_latency
from repro.offload import (
    AlwaysLocal,
    AlwaysRemote,
    DeadlineAware,
    EdgeTier,
    EntropyGated,
    TensorCodec,
    cloud_server_for,
    offload_comparison_table,
)
from repro.serving import poisson_arrivals, zipf_popularity


def main() -> None:
    # 1. A trained pipeline (disk-cached: rerunning this script is instant).
    config = PipelineConfig(
        dataset="mnist",
        seed=0,
        n_train=2500,
        n_test=600,
        classifier_train=TrainConfig(epochs=10),
        autoencoder_train=TrainConfig(epochs=8, batch_size=128),
    )
    artifacts = build_cbnet_pipeline(config)
    branchy = artifacts.branchynet
    test = artifacts.datasets["test"]
    edge, cloud_dev, link = raspberry_pi4(), gci_cpu(), lte()

    # 2. One Zipf-skewed stream at a rate past the Pi's full-model
    #    capacity (and past the LTE uplink's raw-image capacity).
    exit_rate = branchy.infer(test.images).early_exit_rate
    lat = branchynet_expected_latency(branchy, edge, exit_rate)
    rate_hz = min(0.88 / lat.early_path, 1.25 / lat.expected)
    n_requests = 1500
    popular = zipf_popularity(len(test.images), n_requests, exponent=0.9, rng=1)
    images, labels = test.images[popular], test.labels[popular]
    arrival_s = poisson_arrivals(rate_hz, n_requests, rng=2)

    # 3. Local vs remote vs split, identical stream, float16 activations.
    reports = []
    for policy in (AlwaysLocal(), AlwaysRemote(), EntropyGated()):
        cloud = cloud_server_for(policy, branchy, cloud_dev, max_batch_size=16)
        tier = EdgeTier(
            branchy, edge, link, cloud, policy, codec=TensorCodec("float16"), rng=3
        )
        report = tier.serve(images, arrival_s, labels=labels, scenario="steady")
        print(report.summary())
        reports.append(report)

    # 4. The link collapses to 5% bandwidth mid-trace: deadline-aware
    #    offloading degrades to local trunks instead of queueing on air.
    span = float(arrival_s[-1])
    degraded = replace(
        lte(),
        degradation=BandwidthTrace(times_s=(0.4 * span, 0.8 * span), scales=(0.05, 1.0)),
    )
    policy = DeadlineAware(deadline_s=0.2)  # 200 ms interactive SLO
    cloud = cloud_server_for(policy, branchy, cloud_dev, max_batch_size=16)
    tier = EdgeTier(branchy, edge, degraded, cloud, policy, rng=3)
    report = tier.serve(images, arrival_s, labels=labels, scenario="link-collapse")
    print(report.summary())
    reports.append(report)

    print()
    print(
        offload_comparison_table(
            reports, f"Pi 4 -> GCI over LTE @ {rate_hz:.0f} req/s, exit rate {exit_rate:.1%}"
        ).render()
    )
    local, remote, gated, deadline = reports
    print(
        f"\nEntropy-gated split: p95 {gated.p95_s * 1e3:.1f} ms vs always-local "
        f"{local.p95_s * 1e3:.1f} ms (Pi saturated) and always-remote "
        f"{remote.p95_s * 1e3:.1f} ms (uplink saturated), shipping only "
        f"{gated.offload_rate:.1%} of requests ({gated.uplink_mb:.2f} MB up)."
    )


if __name__ == "__main__":
    main()
