#!/usr/bin/env python
"""Profiling demo: attribute the simulator's wall-clock to engine phases.

Builds (or loads from cache) a small CBNet pipeline, runs a homogeneous
four-replica fleet through a clean trace with the phase-attribution
profiler attached, and prints where the *host* time went — arrival
ingest, batch formation, dispatch, completion, report build.  The
virtual clock and every simulated metric are untouched by profiling.
Writes ``profile.speedscope.json`` (open at https://www.speedscope.app)
and ``profile.speedscope.json.collapsed`` for ``flamegraph.pl``.

Run:  python examples/prof_demo.py
"""

from repro import PipelineConfig, TrainConfig, build_cbnet_pipeline
from repro.experiments.prof import run_prof_study
from repro.hw import device_profiles
from repro.obs.prof import SamplingProfiler
from repro.serving import CBNetBackend


def main() -> None:
    # 1. A trained pipeline (disk-cached: rerunning this script is instant).
    config = PipelineConfig(
        dataset="mnist",
        seed=0,
        n_train=2500,
        n_test=600,
        classifier_train=TrainConfig(epochs=10),
        autoencoder_train=TrainConfig(epochs=8, batch_size=128),
    )
    artifacts = build_cbnet_pipeline(config)
    test = artifacts.datasets["test"]
    device = device_profiles()["gci-cpu"]
    backends = [CBNetBackend(artifacts.cbnet, device) for _ in range(4)]

    # 2. Profile one clean cluster run and render the phase tree.  The
    #    scoped timers cost two clock reads per phase, so the simulated
    #    RequestLog is bit-identical to an unprofiled run.
    study = run_prof_study(
        seed=0,
        n_requests=2000,
        backends=backends,
        images=test.images,
        labels=test.labels,
        prof_out="profile.speedscope.json",
    )
    print(study.render())

    # 3. Drill in programmatically: which phase owns the most self time?
    by_name = study.phases.by_name()
    worst = max(by_name, key=lambda name: by_name[name][2])
    count, total_s, self_s = by_name[worst]
    print(
        f"\nhottest phase: {worst!r} — {self_s * 1e3:.1f} ms self across "
        f"{count} calls ({self_s / study.phases.total_s:.0%} of the run)"
    )

    # 4. The statistical sampler answers the next question — which
    #    *modules* burn the time inside that phase — with no
    #    instrumentation at all.
    with SamplingProfiler(interval_s=0.002) as sampler:
        run_prof_study(
            seed=0,
            n_requests=2000,
            backends=backends,
            images=test.images,
            labels=test.labels,
        )
    counts = sampler.by_module()
    total = sum(counts.values()) or 1
    top = sorted(counts.items(), key=lambda kv: kv[1], reverse=True)[:5]
    print(f"\nsampled {sampler.n_samples} stacks; hottest repro modules:")
    for module, count in top:
        print(f"  {module:<40} {count / total:5.1%}")
    print(
        "\nopen profile.speedscope.json at https://www.speedscope.app "
        "for the flamegraph."
    )


if __name__ == "__main__":
    main()
