#!/usr/bin/env python
"""Serving-engine demo: put a trained CBNet behind `repro.serving.Server`.

Builds (or loads from cache) a small CBNet pipeline, wraps it and
BranchyNet as serving backends on a simulated Raspberry Pi 4, and
replays the same bursty Zipf-skewed request stream through both —
micro-batching, LRU result caching, and easy/hard routing included.

Run:  python examples/serving_demo.py
"""

from repro import PipelineConfig, TrainConfig, build_cbnet_pipeline
from repro.hw import raspberry_pi4
from repro.serving import (
    BranchyNetBackend,
    CBNetBackend,
    Server,
    bursty_arrivals,
    comparison_table,
    zipf_popularity,
)


def main() -> None:
    # 1. A trained pipeline (disk-cached: rerunning this script is instant).
    config = PipelineConfig(
        dataset="mnist",
        seed=0,
        n_train=2500,
        n_test=600,
        classifier_train=TrainConfig(epochs=10),
        autoencoder_train=TrainConfig(epochs=8, batch_size=128),
    )
    artifacts = build_cbnet_pipeline(config)
    test = artifacts.datasets["test"]
    device = raspberry_pi4()

    # 2. A bursty request stream with Zipf-skewed image popularity:
    #    2000 requests over the 600 test images, so hot images repeat and
    #    the LRU result cache gets real work.
    n_requests = 2000
    popular = zipf_popularity(len(test.images), n_requests, exponent=0.9, rng=1)
    images, labels = test.images[popular], test.labels[popular]
    arrival_s = bursty_arrivals(
        base_rate_hz=150.0, burst_rate_hz=450.0, n=n_requests, rng=2
    )

    # 3. Serve the identical stream through CBNet and BranchyNet.
    reports = []
    for backend in (
        CBNetBackend(artifacts.cbnet, device),
        BranchyNetBackend(artifacts.branchynet, device),
    ):
        server = Server(
            backend,
            max_batch_size=16,
            max_wait_s=0.004,
            cache_capacity=256,
        )
        report = server.serve(images, arrival_s, labels=labels, scenario="bursty")
        print(report.summary())
        reports.append(report)

    print()
    print(comparison_table(reports, "Bursty load on a simulated Pi 4").render())
    cb, br = reports
    print(
        f"\nCBNet's constant service time keeps its p99 at {cb.p99_s * 1e3:.1f} ms "
        f"vs BranchyNet's {br.p99_s * 1e3:.1f} ms under identical load."
    )


if __name__ == "__main__":
    main()
