#!/usr/bin/env python
"""Quickstart: build and use a CBNet pipeline in ~40 lines.

Trains the full stack on a small synthetic MNIST-like dataset — BranchyNet,
easy/hard labeling, the converting autoencoder, the truncated lightweight
classifier — then runs CBNet inference and reports accuracy, simulated
edge latency, and energy savings.

Run:  python examples/quickstart.py
"""

from repro import PipelineConfig, TrainConfig, build_cbnet_pipeline, train_baseline_lenet
from repro.hw import raspberry_pi4, lenet_latency, cbnet_latency, branchynet_expected_latency
from repro.hw import energy_joules, energy_savings_percent


def main() -> None:
    # 1. Train the pipeline (disk-cached: rerunning this script is instant).
    config = PipelineConfig(
        dataset="mnist",
        seed=0,
        n_train=2500,
        n_test=600,
        classifier_train=TrainConfig(epochs=10),
        autoencoder_train=TrainConfig(epochs=8, batch_size=128),
    )
    artifacts = build_cbnet_pipeline(config)
    lenet, _ = train_baseline_lenet(
        "mnist", config=TrainConfig(epochs=10), seed=0,
        n_train=config.n_train, n_test=config.n_test,
    )

    # 2. Behavioural results on the test set.
    test = artifacts.datasets["test"]
    branchy = artifacts.branchynet.infer(test.images)
    print(f"early-exit rate:      {branchy.early_exit_rate:6.1%}")
    print(f"BranchyNet accuracy:  {(branchy.predictions == test.labels).mean():6.1%}")
    print(f"CBNet accuracy:       {artifacts.cbnet.accuracy(test.images, test.labels):6.1%}")
    print(f"LeNet accuracy:       {(lenet.predict(test.images) == test.labels).mean():6.1%}")

    # 3. Simulated Raspberry Pi 4 latency and energy.
    device = raspberry_pi4()
    t_lenet = lenet_latency(lenet, device)
    t_branchy = branchynet_expected_latency(
        artifacts.branchynet, device, branchy.early_exit_rate
    ).expected
    t_cbnet = cbnet_latency(artifacts.cbnet, device).total
    print(f"\nRaspberry Pi 4 latency per image:")
    print(f"  LeNet      {t_lenet * 1e3:7.3f} ms")
    print(f"  BranchyNet {t_branchy * 1e3:7.3f} ms")
    print(f"  CBNet      {t_cbnet * 1e3:7.3f} ms   ({t_lenet / t_cbnet:.1f}x faster than LeNet)")
    savings = energy_savings_percent(
        energy_joules(device, t_lenet), energy_joules(device, t_cbnet)
    )
    print(f"  CBNet energy savings vs LeNet: {savings:.0f}%")


if __name__ == "__main__":
    main()
