#!/usr/bin/env python
"""Bring-your-own dataset: build a CBNet for data the paper never saw.

The paper's recipe is dataset-agnostic: train any early-exit network,
label easy/hard by exit behaviour, train a converting autoencoder on
same-class easy targets, truncate. This example runs the whole recipe on
a custom synthetic dataset (digit glyphs with an unusually high 50% hard
fraction — the regime where early-exit networks struggle most) without
using the built-in registry entries.

Run:  python examples/train_on_custom_dataset.py
"""

import numpy as np

from repro.core import (
    PipelineConfig,
    TrainConfig,
    build_cbnet_pipeline,
)
from repro.data import load_dataset
from repro.hw import branchynet_expected_latency, cbnet_latency, raspberry_pi4


def main() -> None:
    # 1. A custom workload: the MNIST-like generator at 50% hard samples.
    #    (For fully external data, build an ArrayDataset from your own
    #    NCHW float32 arrays — everything downstream is identical.)
    data = load_dataset("mnist", n_train=2500, n_test=600, seed=42, hard_fraction=0.5)
    print(f"train: {len(data['train'])} samples, "
          f"{data['train'].meta['is_hard'].mean():.0%} hard")

    # 2. Run the paper's recipe. entropy_threshold=None would use the
    #    paper's MNIST value; we tune it on this harder distribution
    #    instead by passing an explicit threshold found by inspection.
    config = PipelineConfig(
        dataset="mnist",
        seed=42,
        n_train=2500,
        n_test=600,
        entropy_threshold=0.05,
        classifier_train=TrainConfig(epochs=10),
        autoencoder_train=TrainConfig(epochs=10, batch_size=128),
        cache=False,
    )
    artifacts = build_cbnet_pipeline(config, datasets=data)

    # 3. In the 50%-hard regime, BranchyNet loses its advantage while
    #    CBNet's cost is unchanged — the paper's motivating scenario.
    test = data["test"]
    res = artifacts.branchynet.infer(test.images)
    device = raspberry_pi4()
    t_branchy = branchynet_expected_latency(
        artifacts.branchynet, device, res.early_exit_rate
    ).expected
    t_cbnet = cbnet_latency(artifacts.cbnet, device).total

    print(f"early-exit rate at 50% hard:  {res.early_exit_rate:6.1%}")
    print(f"BranchyNet accuracy:          {(res.predictions == test.labels).mean():6.1%}")
    print(f"CBNet accuracy:               {artifacts.cbnet.accuracy(test.images, test.labels):6.1%}")
    print(f"BranchyNet latency (Pi 4):    {t_branchy * 1e3:7.3f} ms")
    print(f"CBNet latency (Pi 4):         {t_cbnet * 1e3:7.3f} ms "
          f"({t_branchy / t_cbnet:.1f}x faster)")


if __name__ == "__main__":
    main()
