#!/usr/bin/env python
"""Fleet demo: a heterogeneous CBNet cluster under a flash crowd.

Builds (or loads from cache) a small CBNet pipeline, puts one replica on
each calibrated testbed (Raspberry Pi 4 / GCI-CPU / GCI-K80), and
replays the same flash-crowd request stream under round-robin and
power-of-two-choices balancing — then crashes the K80 mid-trace to show
the failure-injection and retry machinery.

Run:  python examples/fleet_demo.py
"""

from repro import PipelineConfig, TrainConfig, build_cbnet_pipeline
from repro.cluster import Cluster, crash_window, fleet_comparison_table
from repro.hw import device_profiles
from repro.serving import CBNetBackend, flash_crowd_arrivals, zipf_popularity


def main() -> None:
    # 1. A trained pipeline (disk-cached: rerunning this script is instant).
    config = PipelineConfig(
        dataset="mnist",
        seed=0,
        n_train=2500,
        n_test=600,
        classifier_train=TrainConfig(epochs=10),
        autoencoder_train=TrainConfig(epochs=8, batch_size=128),
    )
    artifacts = build_cbnet_pipeline(config)
    test = artifacts.datasets["test"]
    devices = device_profiles()

    def fleet():
        return [CBNetBackend(artifacts.cbnet, dev) for dev in devices.values()]

    # 2. A flash crowd with Zipf-skewed image popularity: calm traffic,
    #    then a sustained spike past the whole fleet's capacity.
    n_requests = 2000
    popular = zipf_popularity(len(test.images), n_requests, exponent=0.9, rng=1)
    images, labels = test.images[popular], test.labels[popular]
    arrival_s = flash_crowd_arrivals(
        base_rate_hz=3000.0,
        peak_rate_hz=25000.0,
        n=n_requests,
        spike_start_s=0.15,
        spike_duration_s=0.05,
        rng=2,
    )

    # 3. The same stream under blind rotation vs two load probes.
    reports = []
    for policy in ("round-robin", "power-of-two"):
        cluster = Cluster(fleet(), policy=policy, slo_s=0.05, cache_capacity=256, rng=3)
        report = cluster.serve(images, arrival_s, labels=labels, scenario="flash-crowd")
        print(report.summary())
        reports.append(report)

    # 4. Same stream again, but the K80 replica crashes mid-spike and
    #    recovers later — retries and availability become visible.
    crashy = Cluster(
        fleet(),
        policy="power-of-two",
        failures=crash_window(replica_id=2, at_s=0.16, duration_s=0.1),
        slo_s=0.05,
        cache_capacity=256,
        rng=3,
    )
    report = crashy.serve(images, arrival_s, labels=labels, scenario="crash-mid-spike")
    print(report.summary())
    reports.append(report)

    print()
    print(
        fleet_comparison_table(
            reports, "Flash crowd on a Pi4 + GCI-CPU + K80 fleet"
        ).render()
    )
    rr, p2c, crash = reports
    print(
        f"\nTwo load probes per request cut p99 from {rr.p99_s * 1e3:.1f} ms "
        f"(round-robin) to {p2c.p99_s * 1e3:.1f} ms; losing the K80 mid-spike "
        f"cost {crash.n_retried} retries yet availability stayed "
        f"{crash.availability:.1%}."
    )


if __name__ == "__main__":
    main()
