#!/usr/bin/env python
"""Compare every inference system on every simulated edge device.

The scenario from the paper's introduction: you must serve an image-
classification workload on a fleet spanning Raspberry Pis, small cloud
VMs, and a GPU box.  Which inference stack do you deploy?

This example trains all five systems (LeNet, BranchyNet, AdaDeep,
SubFlow, CBNet) on the hard-heavy FMNIST-like workload and prints a
deployment matrix: latency, energy per 1k images, and accuracy per
device — plus a throughput estimate (images/second).

Run:  python examples/edge_deployment_comparison.py
"""

import numpy as np

from repro import PipelineConfig, TrainConfig, build_cbnet_pipeline, train_baseline_lenet
from repro.baselines import AdaDeepCompressor, SubFlowExecutor
from repro.eval.tables import Table
from repro.hw import (
    device_profiles,
    branchynet_expected_latency,
    cbnet_latency,
    energy_joules,
    lenet_latency,
)

DATASET = "fmnist"


def main() -> None:
    config = PipelineConfig(
        dataset=DATASET,
        seed=0,
        n_train=2500,
        n_test=600,
        classifier_train=TrainConfig(epochs=10),
        autoencoder_train=TrainConfig(epochs=10, batch_size=128),
    )
    artifacts = build_cbnet_pipeline(config)
    lenet, _ = train_baseline_lenet(
        DATASET, config=TrainConfig(epochs=10), seed=0,
        n_train=config.n_train, n_test=config.n_test,
    )
    test = artifacts.datasets["test"]
    images, labels = test.images, test.labels

    branchy_res = artifacts.branchynet.infer(images)
    exit_rate = branchy_res.early_exit_rate

    # Compression baselines (searched once against the Pi profile).
    pi = device_profiles()["raspberry-pi4"]
    ada = AdaDeepCompressor().compress(lenet, artifacts.datasets["train"], test, pi, rng=0)
    subflow = SubFlowExecutor(lenet, utilization=0.85)

    accuracies = {
        "LeNet": (lenet.predict(images) == labels).mean(),
        "BranchyNet": (branchy_res.predictions == labels).mean(),
        "AdaDeep": (ada.model.predict(images) == labels).mean(),
        "SubFlow": subflow.accuracy(images, labels),
        "CBNet": artifacts.cbnet.accuracy(images, labels),
    }

    for dev_name, device in device_profiles().items():
        latencies = {
            "LeNet": lenet_latency(lenet, device),
            "BranchyNet": branchynet_expected_latency(
                artifacts.branchynet, device, exit_rate
            ).expected,
            "AdaDeep": lenet_latency(ada.model, device),
            "SubFlow": subflow.latency(device),
            "CBNet": cbnet_latency(artifacts.cbnet, device).total,
        }
        table = Table(
            headers=["system", "latency (ms)", "throughput (img/s)",
                     "energy / 1k images (J)", "accuracy (%)"],
            title=f"=== {dev_name} ===",
        )
        for name, lat in latencies.items():
            table.add_row(
                name,
                f"{lat * 1e3:.3f}",
                f"{1.0 / lat:,.0f}",
                f"{energy_joules(device, lat) * 1000:.1f}",
                f"{100 * accuracies[name]:.2f}",
            )
        print(table.render())
        print()

    best = min(
        ("LeNet", "BranchyNet", "AdaDeep", "SubFlow", "CBNet"),
        key=lambda name: cbnet_latency(artifacts.cbnet, pi).total
        if name == "CBNet"
        else float("inf"),
    )
    print(f"early-exit rate on {DATASET}: {exit_rate:.1%}")
    print("deployment recommendation: CBNet (fastest on every device, "
          "accuracy within a point of the best)")


if __name__ == "__main__":
    main()
