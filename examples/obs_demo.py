#!/usr/bin/env python
"""Observability demo: trace a fault storm, then find the bad replica.

Builds (or loads from cache) a small CBNet pipeline, runs a homogeneous
four-replica fleet through a seeded storm concentrated on one replica
(straggler window, flaky window, partition), and shows what the
observability layer captures: the span tree, streaming metrics, SLO
burn-rate alerts — and a telemetry-only verdict on which replica is
sick.  Writes ``obs_trace.json`` for https://ui.perfetto.dev.

Run:  python examples/obs_demo.py
"""

from repro import PipelineConfig, TrainConfig, build_cbnet_pipeline
from repro.experiments.obs import run_obs_study
from repro.hw import device_profiles
from repro.obs.spans import SPAN_BATCH, SPAN_NAMES, SPAN_REQUEST
from repro.serving import CBNetBackend


def main() -> None:
    # 1. A trained pipeline (disk-cached: rerunning this script is instant).
    config = PipelineConfig(
        dataset="mnist",
        seed=0,
        n_train=2500,
        n_test=600,
        classifier_train=TrainConfig(epochs=10),
        autoencoder_train=TrainConfig(epochs=8, batch_size=128),
    )
    artifacts = build_cbnet_pipeline(config)
    test = artifacts.datasets["test"]
    device = device_profiles()["gci-cpu"]
    backends = [CBNetBackend(artifacts.cbnet, device) for _ in range(4)]

    # 2. Replay the targeted storm with tracing on; export a Perfetto
    #    trace.  The study names the faulty replica from telemetry alone.
    study = run_obs_study(
        seed=0,
        n_requests=2000,
        backends=backends,
        images=test.images,
        labels=test.labels,
        trace_out="obs_trace.json",
    )
    print(study.render())

    # 3. Poke at the raw telemetry the verdict came from.
    obs = study.observer
    spans = obs.spans
    print(
        f"\nspan log: {len(spans)} rows — "
        f"{spans.count(SPAN_REQUEST)} request trees, "
        f"{spans.count(SPAN_BATCH)} batches; "
        f"kinds present: "
        f"{sorted({SPAN_NAMES[k] for k in set(spans.kind.tolist())})}"
    )
    snap = obs.metrics.snapshot()
    print(
        f"sojourn p50 {snap['sojourn_s.p50'] * 1e3:.2f} ms, "
        f"p99 {snap['sojourn_s.p99'] * 1e3:.2f} ms "
        f"(P2 sketch {snap['sojourn_p99.p99'] * 1e3:.2f} ms)"
    )
    for alert in obs.alerts[:3]:
        print(
            f"alert @ t={alert.time_s:.3f}s: class {alert.class_name} "
            f"burning at {alert.burn_rate:.0f}x "
            f"({alert.n_missed}/{alert.n_requests} missed)"
        )
    print("\nopen obs_trace.json at https://ui.perfetto.dev to see the storm.")


if __name__ == "__main__":
    main()
