#!/usr/bin/env python
"""Visualize the hard→easy conversion (the paper's Fig. 1 / Fig. 2 story).

Picks the highest-entropy (hardest) test images per the BranchyNet gate,
runs them through the converting autoencoder, and renders input vs output
side by side as ASCII art, together with the branch classifier's entropy
before/after — showing *why* the converted images can take the fast path.

Run:  python examples/hard_image_conversion.py [dataset]
"""

import sys

import numpy as np

from repro import PipelineConfig, TrainConfig, build_cbnet_pipeline
from repro.models.branchynet import _softmax_np
from repro.nn import Tensor, no_grad
from repro.nn import functional as F

CHARS = " .:-=+*#%@"


def ascii_image(image: np.ndarray, step: int = 1) -> list[str]:
    """28x28 float image → list of text rows."""
    img = image.squeeze()
    return [
        "".join(CHARS[min(9, int(v * 9.999))] for v in row[::step]) for row in img[::step]
    ]


def side_by_side(left: np.ndarray, right: np.ndarray, gap: str = "   ->   ") -> str:
    rows_l, rows_r = ascii_image(left), ascii_image(right)
    return "\n".join(l + gap + r for l, r in zip(rows_l, rows_r))


def main(dataset: str = "fmnist") -> None:
    config = PipelineConfig(
        dataset=dataset,
        seed=0,
        n_train=2500,
        n_test=600,
        classifier_train=TrainConfig(epochs=10),
        autoencoder_train=TrainConfig(epochs=10, batch_size=128),
    )
    artifacts = build_cbnet_pipeline(config)
    test = artifacts.datasets["test"]

    # Hardest images = highest branch entropy.
    entropy = artifacts.branchynet.branch_entropies(test.images)
    hardest = np.argsort(entropy)[::-1][:4]

    converted = artifacts.cbnet.convert(test.images[hardest])
    with no_grad():
        logits_after = artifacts.cbnet.classifier(Tensor(converted)).data
    entropy_after = F.entropy(_softmax_np(logits_after), axis=1)
    preds = logits_after.argmax(axis=1)

    print(f"=== {dataset}: hard → easy conversion "
          f"(threshold {artifacts.entropy_threshold:g}) ===\n")
    for rank, idx in enumerate(hardest):
        label = int(test.labels[idx])
        print(
            f"[{rank + 1}] true class {label} | branch entropy "
            f"{entropy[idx]:.3f} -> {entropy_after[rank]:.3f} | "
            f"CBNet prediction: {int(preds[rank])} "
            f"({'correct' if preds[rank] == label else 'WRONG'})"
        )
        print(side_by_side(test.images[idx], converted[rank]))
        print()


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "fmnist")
